//! The parallel sweep runner behind the Figure 5/6 regenerations.
//!
//! A figure panel is a grid — file sizes × run lengths × latencies — of
//! *independent* paired experiments: each [`ExperimentSpec`] carries its own
//! seed and builds its own workload, allocator, and engine, so a grid point
//! executes identically on any thread in any order. [`SweepRunner`] exploits
//! that: it expands a [`SweepGrid`] into a flat, deterministically ordered
//! list of points and runs them on a small pool of scoped worker threads.
//! Workers claim points from a shared atomic counter and write each result
//! into that point's own pre-allocated slot, so collection is lock-free and
//! the output order never depends on scheduling. A full three-panel figure
//! (108 paired runs) drops from minutes to the wall-clock of its slowest
//! points.
//!
//! The same independence makes points perfect cache entries. Attach an
//! [`rr_store::Store`] with [`SweepRunner::with_store`] and the runner looks
//! every point up by its content address (see [`crate::cache`]) before
//! touching an engine: a warm sweep skips the simulation entirely and
//! merges stored [`PointReport`]s with freshly computed ones in canonical
//! grid order, producing *byte-identical* JSON to a cold run. Corrupt or
//! stale records degrade to recomputation, never to errors.
//!
//! Observability: every completed point yields a [`PointReport`] with the
//! complete [`SimStats`] of both architectures, host wall-clock times, and
//! the point's grid coordinates and seed; [`SweepReport`] aggregates them
//! and serializes to JSON via the `rr fig5 --json` family of subcommands,
//! while the surrounding [`SweepRun`] carries the volatile facts of this
//! particular execution (worker count, wall clock, cache hit counts, and a
//! host-telemetry snapshot) that must *not* appear in the replayable
//! report. The runner also feeds the process-wide [`rr_telemetry::METRICS`]
//! registry: point outcomes, where the nanoseconds went (queue wait vs
//! simulation vs serialization vs store I/O), and worker-pool occupancy.
//! Per-point progress lines are `debug`-level log records — set
//! `RUST_LOG=debug` (or the CLI's `--log-level debug`) to see them, or
//! force them on regardless of the level with
//! [`SweepRunner::with_progress`].
//!
//! # Example
//!
//! ```
//! use register_relocation::sweep::{SweepGrid, SweepRunner};
//! use register_relocation::experiments::ExperimentSpec;
//!
//! // A scaled-down Figure 5 panel, run on two worker threads.
//! let mut grid = SweepGrid::figure5_panel(64, 7);
//! grid.run_lengths = vec![16.0];
//! grid.latencies = vec![100];
//! grid.base = ExperimentSpec { threads: 8, work_per_thread: 2_000, ..grid.base };
//! let run = SweepRunner::new(2).run(&grid)?;
//! assert_eq!(run.report.points.len(), 1);
//! assert_eq!(run.report.points[0].fixed.accounted_cycles(),
//!            run.report.points[0].fixed.total_cycles);
//! assert!(!run.cache.enabled, "no store attached");
//! # Ok::<(), String>(())
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::cache;
use crate::experiments::{
    compare_traced, compare_traced_with, ExperimentSpec, FaultKind,
};
use crate::figures::{
    FigurePoint, FIG5_LATENCIES, FIG5_RUN_LENGTHS, FIG6_LATENCIES, FIG6_RUN_LENGTHS,
    FILE_SIZES,
};
use rr_sim::{Engine, EngineSnapshot, SimStats, TracedRun};
use rr_store::{Fingerprint, Lookup, Store, StoreError};
use rr_telemetry::log::{self, Level};
use rr_telemetry::span;
use rr_telemetry::{info, warn, IncMetric, MetricsSnapshot, StoreMetric, METRICS};
use rr_workload::ContextSizeDist;

/// Version of the serialized sweep artifacts ([`SweepReport`] and
/// [`PointReport`] JSON, including the per-point payloads in the result
/// store). Bump on any field addition, removal, or meaning change;
/// [`SweepReport::from_json`] and the cache decode path refuse other
/// versions, and the store salt folds this constant in so stored points
/// from older schemas are never even looked up.
pub const SWEEP_SCHEMA_VERSION: u32 = 2;

/// Which fault process a grid's latency axis parameterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultFamily {
    /// Constant-latency remote cache misses (Figure 5, section 3.2).
    Cache,
    /// Exponentially distributed synchronization waits (Figure 6,
    /// section 3.3).
    Sync,
}

impl FaultFamily {
    /// Instantiates the fault at one latency grid coordinate.
    pub fn fault(&self, latency: u64) -> FaultKind {
        match self {
            FaultFamily::Cache => FaultKind::Cache { latency },
            FaultFamily::Sync => FaultKind::Sync { mean_latency: latency as f64 },
        }
    }
}

/// A rectangular experiment grid: the cross product of file sizes, run
/// lengths, and latencies, under one fault family and context-size
/// distribution.
///
/// `base` supplies everything a grid axis does not override — thread count,
/// work per thread, cycle horizon, and the seed — so tests can shrink a
/// grid's workloads without touching its shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Register file sizes `F` (outermost axis; one figure panel each).
    pub file_sizes: Vec<u32>,
    /// Mean run lengths `R` (middle axis; one curve each).
    pub run_lengths: Vec<f64>,
    /// Fault latencies `L` (innermost axis; one plotted point each).
    pub latencies: Vec<u64>,
    /// Fault process the latency axis parameterizes.
    pub fault: FaultFamily,
    /// Context-size distribution `C`.
    pub context_size: ContextSizeDist,
    /// Template for per-point specs (threads, work, horizon, seed).
    pub base: ExperimentSpec,
}

impl SweepGrid {
    /// The full Figure 5 grid: cache faults, `C ~ U(6,24)`, all three
    /// panels.
    pub fn figure5(seed: u64) -> Self {
        SweepGrid {
            file_sizes: FILE_SIZES.to_vec(),
            run_lengths: FIG5_RUN_LENGTHS.to_vec(),
            latencies: FIG5_LATENCIES.to_vec(),
            fault: FaultFamily::Cache,
            context_size: ContextSizeDist::PAPER_UNIFORM,
            base: ExperimentSpec { seed, ..ExperimentSpec::default() },
        }
    }

    /// One Figure 5 panel (a single register file size).
    pub fn figure5_panel(file_size: u32, seed: u64) -> Self {
        SweepGrid { file_sizes: vec![file_size], ..Self::figure5(seed) }
    }

    /// The full Figure 6 grid: synchronization faults, all three panels.
    pub fn figure6(seed: u64) -> Self {
        SweepGrid {
            file_sizes: FILE_SIZES.to_vec(),
            run_lengths: FIG6_RUN_LENGTHS.to_vec(),
            latencies: FIG6_LATENCIES.to_vec(),
            fault: FaultFamily::Sync,
            context_size: ContextSizeDist::PAPER_UNIFORM,
            base: ExperimentSpec { seed, ..ExperimentSpec::default() },
        }
    }

    /// One Figure 6 panel (a single register file size).
    pub fn figure6_panel(file_size: u32, seed: u64) -> Self {
        SweepGrid { file_sizes: vec![file_size], ..Self::figure6(seed) }
    }

    /// The section 3.4 homogeneous-context grid: the Figure 5 axes with
    /// every thread demanding the same context size `C`.
    pub fn homogeneous(file_size: u32, context_size: u32, seed: u64) -> Self {
        SweepGrid {
            context_size: ContextSizeDist::Fixed(context_size),
            ..Self::figure5_panel(file_size, seed)
        }
    }

    /// The grid's seed (carried by the base spec).
    pub fn seed(&self) -> u64 {
        self.base.seed
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.file_sizes.len() * self.run_lengths.len() * self.latencies.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its flat, canonically ordered point list:
    /// file sizes outermost, then run lengths, then latencies — the exact
    /// nesting of the original serial sweep loops, so figure output is
    /// byte-identical however many workers later execute the points.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &file_size in &self.file_sizes {
            for &run_length in &self.run_lengths {
                for &latency in &self.latencies {
                    out.push(SweepPoint {
                        index: out.len(),
                        file_size,
                        run_length,
                        latency,
                        spec: ExperimentSpec {
                            file_size,
                            run_length,
                            fault: self.fault.fault(latency),
                            context_size: self.context_size,
                            ..self.base
                        },
                    });
                }
            }
        }
        out
    }

    /// Finds the grid point at coordinates `(F, R, L)`, if the grid
    /// contains it. Integer coordinates compare exactly; the run-length
    /// coordinate matches its axis value canonically (see
    /// [`run_length_matches`]), so `--point 64,8,400` finds the point even
    /// when the axis value's bit pattern differs from what the user's
    /// string parses to.
    pub fn point_at(&self, file_size: u32, run_length: f64, latency: u64) -> Option<SweepPoint> {
        self.points().into_iter().find(|p| {
            p.file_size == file_size
                && p.latency == latency
                && run_length_matches(p.run_length, run_length)
        })
    }
}

/// Whether a user-supplied run-length coordinate denotes the grid axis
/// value `axis`.
///
/// Bit-identical floats always match. Beyond that, a coordinate within one
/// part in 10^9 of the axis value matches too: tight enough that two
/// distinct axis values (the paper's grids space them a factor of two
/// apart) can never both claim one coordinate, loose enough that `0.3`
/// finds an axis value computed as `0.1 + 0.2` — the exact-bit comparison
/// this replaces silently rejected such points and made fractional
/// coordinates un-addressable from the CLI.
fn run_length_matches(axis: f64, coord: f64) -> bool {
    axis.to_bits() == coord.to_bits() || (axis - coord).abs() <= axis.abs() * 1e-9
}

/// One expanded grid point: its coordinates plus the self-contained spec
/// that executes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Position in the grid's canonical order.
    pub index: usize,
    /// Register file size `F`.
    pub file_size: u32,
    /// Mean run length `R`.
    pub run_length: f64,
    /// Latency grid coordinate `L`.
    pub latency: u64,
    /// The experiment this point runs (both architectures, via
    /// [`compare_traced`]).
    pub spec: ExperimentSpec,
}

/// Everything observed while executing one grid point.
///
/// This struct is also the result store's payload format: a computed point
/// serializes to compact JSON and is stored under its spec's fingerprint,
/// so the exact bytes a cold run would emit — wall-clock fields included —
/// come back on a warm run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointReport {
    /// [`SWEEP_SCHEMA_VERSION`] this report was produced under.
    pub schema_version: u32,
    /// Position in the grid's canonical order.
    pub index: usize,
    /// Register file size `F`.
    pub file_size: u32,
    /// Mean run length `R`.
    pub run_length: f64,
    /// Latency grid coordinate `L`.
    pub latency: u64,
    /// Workload seed the point ran with.
    pub seed: u64,
    /// The plotted figure point (identical to the serial sweep's output).
    pub figure: FigurePoint,
    /// Full cycle accounting of the fixed-architecture run.
    pub fixed: SimStats,
    /// Full cycle accounting of the flexible-architecture run.
    pub flexible: SimStats,
    /// Host wall-clock nanoseconds of the fixed run alone.
    pub fixed_wall_nanos: u64,
    /// Host wall-clock nanoseconds of the flexible run alone.
    pub flexible_wall_nanos: u64,
    /// Host wall-clock nanoseconds for the whole point (both runs plus
    /// workload construction). For a cache hit this is the *original*
    /// compute time, so warm reports reproduce cold ones byte for byte.
    pub wall_nanos: u64,
}

/// The replayable result of one sweep: per-point reports in canonical grid
/// order plus the metadata that identifies them.
///
/// Deliberately excluded: worker count, end-to-end wall clock, and cache
/// statistics — anything that varies between executions of the *same*
/// science lives on [`SweepRun`] instead, so a warm run's serialized report
/// is byte-identical to the cold run that populated the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// [`SWEEP_SCHEMA_VERSION`] this report was produced under.
    pub schema_version: u32,
    /// Seed shared by every point.
    pub seed: u64,
    /// Per-point results, ordered by [`PointReport::index`].
    pub points: Vec<PointReport>,
}

impl SweepReport {
    /// The figure points in canonical grid order — exactly what the serial
    /// sweeps returned, for the panel renderers.
    pub fn figure_points(&self) -> Vec<FigurePoint> {
        self.points.iter().map(|p| p.figure.clone()).collect()
    }

    /// The figure points of one panel (one register file size), in order.
    pub fn panel(&self, file_size: u32) -> Vec<FigurePoint> {
        self.points
            .iter()
            .filter(|p| p.file_size == file_size)
            .map(|p| p.figure.clone())
            .collect()
    }

    /// Sum of per-point wall-clock times — the serial-equivalent cost the
    /// worker pool amortized.
    pub fn points_wall_nanos(&self) -> u64 {
        self.points.iter().map(|p| p.wall_nanos).sum()
    }

    /// The slowest point, if any — the wall-clock floor no worker count can
    /// beat.
    pub fn slowest_point(&self) -> Option<&PointReport> {
        self.points.iter().max_by_key(|p| p.wall_nanos)
    }

    /// Serializes the full report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json_pretty(&self) -> Result<String, StoreError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| StoreError::json("serializing sweep report", e))
    }

    /// Parses a serialized report, refusing schema versions this build does
    /// not speak.
    ///
    /// # Errors
    ///
    /// [`StoreError::Json`] on malformed JSON, [`StoreError::SchemaMismatch`]
    /// when the report or any of its points carries a foreign
    /// [`SWEEP_SCHEMA_VERSION`].
    pub fn from_json(json: &str) -> Result<SweepReport, StoreError> {
        let report: SweepReport = serde_json::from_str(json)
            .map_err(|e| StoreError::json("parsing sweep report", e))?;
        if report.schema_version != SWEEP_SCHEMA_VERSION {
            return Err(StoreError::SchemaMismatch {
                what: "sweep report",
                found: report.schema_version,
                expected: SWEEP_SCHEMA_VERSION,
            });
        }
        for p in &report.points {
            if p.schema_version != SWEEP_SCHEMA_VERSION {
                return Err(StoreError::SchemaMismatch {
                    what: "point report",
                    found: p.schema_version,
                    expected: SWEEP_SCHEMA_VERSION,
                });
            }
        }
        Ok(report)
    }
}

/// How the result store behaved during one sweep execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSummary {
    /// Whether a store was attached at all.
    pub enabled: bool,
    /// Points served from the store without running an engine.
    pub hits: usize,
    /// Points absent from the store (computed fresh).
    pub misses: usize,
    /// Freshly computed points successfully persisted.
    pub stored: usize,
    /// Records found damaged during lookup and moved to quarantine.
    pub quarantined: usize,
}

/// One execution of a sweep: the replayable [`SweepReport`] plus the
/// volatile facts of *this* run that must not contaminate it.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The replayable science (what `--json` serializes).
    pub report: SweepReport,
    /// Worker threads this execution used.
    pub jobs: usize,
    /// End-to-end host wall-clock nanoseconds of this execution.
    pub total_wall_nanos: u64,
    /// Result-store traffic of this execution.
    pub cache: CacheSummary,
    /// Host-telemetry registry flush taken when the sweep finished.
    /// Process-cumulative (the registry is shared by every sweep this
    /// process ran), deterministic to serialize, and — like every other
    /// field of this wrapper — never part of the replayable report.
    pub metrics: MetricsSnapshot,
}

/// What a sweep observer learns about each completed point, as it
/// completes (in scheduling order, not grid order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointOutcome {
    /// The point's position in the grid's canonical order.
    pub index: usize,
    /// Whether the point was served from the result store without running
    /// an engine.
    pub cached: bool,
    /// Host wall-clock nanoseconds spent handling the point end to end
    /// (store lookup + simulation + persist).
    pub wall_nanos: u64,
    /// Of `wall_nanos`, nanoseconds spent talking to the result store
    /// (the lookup for cached points, the persist for computed ones).
    pub store_nanos: u64,
}

/// Executes [`SweepGrid`]s across a pool of scoped worker threads.
///
/// Determinism guarantee: results are *bit-identical* for every worker
/// count. Each point's spec is self-contained (own seed, own RNG, own
/// engine), workers only choose *which* point to run next, and every result
/// is written to the slot pre-assigned to its grid index. Attaching a store
/// preserves the guarantee: a stored point's payload is the exact record a
/// cold run computed.
pub struct SweepRunner {
    jobs: usize,
    progress: Option<bool>,
    store: Option<Store>,
    checkpoint_every: Option<u64>,
    observer: Option<Arc<dyn Fn(PointOutcome) + Send + Sync>>,
}

impl fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepRunner")
            .field("jobs", &self.jobs)
            .field("progress", &self.progress)
            .field("store", &self.store)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("observer", &self.observer.as_ref().map(|_| "Fn(PointOutcome)"))
            .finish()
    }
}

impl SweepRunner {
    /// A runner with `jobs` worker threads; `0` means one per available
    /// hardware thread. Progress lines default to the logger's `debug`
    /// level (see [`SweepRunner::with_progress`]). No result store is
    /// attached by default.
    pub fn new(jobs: usize) -> Self {
        SweepRunner {
            jobs: resolve_jobs(jobs),
            progress: None,
            store: None,
            checkpoint_every: None,
            observer: None,
        }
    }

    /// Worker threads this runner will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Forces per-point progress lines on or off, overriding the log
    /// level. Without this override, progress lines are `debug`-level log
    /// records: visible under `RUST_LOG=debug` / `--log-level debug`,
    /// silent otherwise (`RUST_LOG=warn` no longer turns them on).
    #[must_use]
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = Some(on);
        self
    }

    /// Whether this runner emits per-point progress lines: the explicit
    /// override when set, else the logger's `debug` gate.
    fn progress_enabled(&self) -> bool {
        self.progress.unwrap_or_else(|| log::enabled(Level::Debug))
    }

    /// Attaches (or detaches, with `None`) a result store. Subsequent
    /// [`SweepRunner::run`] calls look every point up before computing it
    /// and persist every fresh result.
    #[must_use]
    pub fn with_store(mut self, store: Option<Store>) -> Self {
        self.store = store;
        self
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Enables (or disables, with `None`) mid-run engine checkpointing:
    /// every `every` simulated cycles, each in-flight architecture leg
    /// persists a rolling snapshot of its complete engine state into the
    /// attached store, and a later run of the same point resumes from the
    /// newest valid checkpoint instead of starting over. The simulated
    /// results are bit-identical with checkpointing on, off, or resumed
    /// mid-leg (see `rr-sim`'s snapshot proofs); only host wall-clock
    /// fields can differ. No-op without a store. `0` is treated as `1`.
    #[must_use]
    pub fn with_checkpoint_every(mut self, every: Option<u64>) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// The configured checkpoint stride, if any.
    pub fn checkpoint_every(&self) -> Option<u64> {
        self.checkpoint_every
    }

    /// Attaches an observer called once per completed point, from whichever
    /// worker thread finished it. The `rr serve` daemon uses this for live
    /// per-job progress; the callback must be cheap and must not panic.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Fn(PointOutcome) + Send + Sync>) -> Self {
        self.observer = Some(observer);
        self
    }

    fn observe(&self, outcome: PointOutcome) {
        if let Some(observer) = &self.observer {
            observer(outcome);
        }
    }

    /// Runs every point of `grid` — serving from the attached store where
    /// possible — and collects the reports in canonical grid order.
    ///
    /// # Errors
    ///
    /// Returns the first (by grid order) point failure. Store problems are
    /// never fatal: a failed lookup or persist degrades to recomputation
    /// (with a warning on stderr) and the sweep proceeds.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepRun, String> {
        let points = grid.points();
        let total = points.len();
        let completed = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let misses = AtomicUsize::new(0);
        let stored = AtomicUsize::new(0);
        let quarantined = AtomicUsize::new(0);
        let started = Instant::now();
        METRICS.sweep.workers.store(self.jobs as u64);
        // Capture the caller's trace context (the submitting request, when
        // running under `rr serve`) so it survives the hop onto the sweep's
        // own worker threads and per-point logs still carry the trace id.
        let trace = span::current();
        let results = parallel_map(total, self.jobs, |i| {
            let _trace_ctx = span::enter_opt(trace);
            METRICS
                .sweep
                .queue_wait_nanos
                .add(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let handling_started = Instant::now();
            let p = &points[i];
            let key = self.store.as_ref().and_then(|store| {
                match cache::point_key(&p.spec, store.salt()) {
                    Ok(key) => Some(key),
                    Err(e) => {
                        warn!("sweep", "cannot key point {i}: {e}");
                        None
                    }
                }
            });
            if let (Some(store), Some(key)) = (self.store.as_ref(), key.as_ref()) {
                let lookup_started = Instant::now();
                match lookup_point(store, key, p) {
                    PointLookup::Hit(report) => {
                        let store_nanos = nanos_since(lookup_started);
                        hits.fetch_add(1, Ordering::Relaxed);
                        METRICS.sweep.points_cached.inc();
                        self.progress_line(&completed, total, &report, true);
                        self.observe(PointOutcome {
                            index: p.index,
                            cached: true,
                            wall_nanos: nanos_since(handling_started),
                            store_nanos,
                        });
                        return Ok(*report);
                    }
                    PointLookup::Quarantined => {
                        quarantined.fetch_add(1, Ordering::Relaxed);
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                    PointLookup::Miss => {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let point_started = Instant::now();
            let traced = match (self.store.as_ref(), self.checkpoint_every) {
                (Some(store), Some(every)) => compare_traced_with(&p.spec, |leg| {
                    checkpointed_leg(store, leg, every, p.index)
                }),
                _ => compare_traced(&p.spec),
            }
            .map_err(|e| {
                METRICS.sweep.points_failed.inc();
                format!("point {i} (F={} R={} L={}): {e}", p.file_size, p.run_length, p.latency)
            })?;
            let wall_nanos =
                u64::try_from(point_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            METRICS.sweep.sim_nanos.add(wall_nanos);
            METRICS.spans.point_compute.record(wall_nanos);
            METRICS.sweep.points_computed.inc();
            let report = PointReport {
                schema_version: SWEEP_SCHEMA_VERSION,
                index: p.index,
                file_size: p.file_size,
                run_length: p.run_length,
                latency: p.latency,
                seed: p.spec.seed,
                figure: FigurePoint {
                    run_length: p.run_length,
                    comparison: traced.point.clone(),
                },
                fixed: traced.fixed,
                flexible: traced.flexible,
                fixed_wall_nanos: traced.fixed_wall_nanos,
                flexible_wall_nanos: traced.flexible_wall_nanos,
                wall_nanos,
            };
            let mut store_nanos = 0;
            if let (Some(store), Some(key)) = (self.store.as_ref(), key.as_ref()) {
                let persist_started = Instant::now();
                match persist_point(store, key, &report) {
                    Ok(()) => {
                        stored.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        warn!("sweep", "could not store point {i}: {e}");
                    }
                }
                store_nanos = nanos_since(persist_started);
            }
            self.progress_line(&completed, total, &report, false);
            self.observe(PointOutcome {
                index: p.index,
                cached: false,
                wall_nanos: nanos_since(handling_started),
                store_nanos,
            });
            Ok::<PointReport, String>(report)
        });
        let points = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(SweepRun {
            report: SweepReport {
                schema_version: SWEEP_SCHEMA_VERSION,
                seed: grid.seed(),
                points,
            },
            jobs: self.jobs,
            total_wall_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            cache: CacheSummary {
                enabled: self.store.is_some(),
                hits: hits.into_inner(),
                misses: misses.into_inner(),
                stored: stored.into_inner(),
                quarantined: quarantined.into_inner(),
            },
            metrics: METRICS.snapshot(),
        })
    }

    fn progress_line(
        &self,
        completed: &AtomicUsize,
        total: usize,
        report: &PointReport,
        cached: bool,
    ) {
        if !self.progress_enabled() {
            return;
        }
        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
        // `log_forced` so an explicit `--progress` wins even when the log
        // level would suppress `debug` records.
        log::log_forced(
            Level::Debug,
            "sweep",
            format_args!(
                "{done:>3}/{total} F={:<3} R={:<5} L={:<4} fixed={:.3} flexible={:.3} wall={:.1}ms{}",
                report.file_size,
                report.run_length,
                report.latency,
                report.figure.comparison.fixed_efficiency,
                report.figure.comparison.flexible_efficiency,
                report.wall_nanos as f64 / 1e6,
                if cached { " (cached)" } else { "" },
            ),
        );
    }

    /// Runs an arbitrary list of specs (not necessarily a rectangular grid)
    /// across the worker pool, returning each spec's traced run in input
    /// order. This is the low-level entry the ablation and custom
    /// experiment binaries use; it bypasses the result store.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) spec failure.
    pub fn run_specs(&self, specs: &[ExperimentSpec]) -> Result<Vec<rr_sim::TracedRun>, String> {
        let results = parallel_map(specs.len(), self.jobs, |i| {
            specs[i].run_traced().map_err(|e| format!("spec {i}: {e}"))
        });
        results.into_iter().collect()
    }
}

/// Outcome of a store lookup for one sweep point.
enum PointLookup {
    /// A valid stored report, index already rebased onto the current grid.
    Hit(Box<PointReport>),
    Miss,
    /// The record existed but was damaged; it has been quarantined.
    Quarantined,
}

/// Looks `p` up in the store and validates the payload semantically: schema
/// version and grid coordinates must match the point the key was derived
/// from. Any failure degrades to [`PointLookup::Miss`] — the caller
/// recomputes and overwrites.
fn lookup_point(store: &Store, key: &rr_store::Fingerprint, p: &SweepPoint) -> PointLookup {
    let io_started = Instant::now();
    let looked_up = store.get(key);
    METRICS.sweep.store_io_nanos.add(METRICS.spans.store_get.observe_since(io_started));
    let payload = match looked_up {
        Ok(Lookup::Hit(bytes)) => bytes,
        Ok(Lookup::Miss) => return PointLookup::Miss,
        Ok(Lookup::Quarantined) => return PointLookup::Quarantined,
        Err(e) => {
            warn!("sweep", "store lookup failed for point {}: {e}", p.index);
            return PointLookup::Miss;
        }
    };
    let decode_started = Instant::now();
    let decoded = std::str::from_utf8(&payload)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str::<PointReport>(text).map_err(|e| e.to_string()));
    METRICS
        .sweep
        .serialize_nanos
        .add(u64::try_from(decode_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let mut report = match decoded {
        Ok(r) => r,
        Err(e) => {
            warn!("sweep", "undecodable cached point {}: {e}", p.index);
            return PointLookup::Miss;
        }
    };
    let coords_match = report.schema_version == SWEEP_SCHEMA_VERSION
        && report.file_size == p.file_size
        && report.latency == p.latency
        && report.seed == p.spec.seed
        && report.run_length.to_bits() == p.run_length.to_bits();
    if !coords_match {
        warn!(
            "sweep",
            "cached point {} does not match its key's coordinates; recomputing",
            p.index
        );
        return PointLookup::Miss;
    }
    // The stored index is relative to whatever grid first computed the
    // point (a panel sweep and a full-figure sweep share points at
    // different offsets); rebase it onto this grid.
    report.index = p.index;
    PointLookup::Hit(Box::new(report))
}

/// Serializes and persists one freshly computed point.
fn persist_point(
    store: &Store,
    key: &rr_store::Fingerprint,
    report: &PointReport,
) -> Result<(), StoreError> {
    let serialize_started = Instant::now();
    let payload = serde_json::to_string(report)
        .map_err(|e| StoreError::json("serializing point report", e))?;
    METRICS
        .sweep
        .serialize_nanos
        .add(u64::try_from(serialize_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let io_started = Instant::now();
    let result = store.put(key, payload.as_bytes());
    METRICS.sweep.store_io_nanos.add(METRICS.spans.store_put.observe_since(io_started));
    result
}

/// Saturating nanoseconds since `started`.
fn nanos_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs one architecture leg under `--checkpoint-every`: the engine
/// advances in `every`-cycle strides and persists a rolling snapshot of
/// its complete state into the store after each stride (last-write-wins
/// under the leg's domain-tagged [`cache::snapshot_key`]). Before
/// computing anything, the newest valid checkpoint is restored, so an
/// interrupted sweep pays only for the cycles since its last snapshot.
///
/// Every checkpoint problem — unreadable, corrupt, foreign schema or code
/// version, failed persist — degrades to computing from cycle 0 with a
/// warning; nothing on this path can fail the sweep that plain
/// recomputation would have survived. The simulated science is
/// bit-identical however often the leg is interrupted and resumed
/// (`rr-sim`'s snapshot proofs); only the host wall-clock differs.
fn checkpointed_leg(
    store: &Store,
    leg: &ExperimentSpec,
    every: u64,
    index: usize,
) -> Result<TracedRun, String> {
    let started = Instant::now();
    let every = every.max(1);
    let key = match cache::snapshot_key(leg, store.salt()) {
        Ok(key) => key,
        Err(e) => {
            warn!("sweep", "cannot key checkpoint for point {index}: {e}; running without checkpoints");
            return leg.run_traced();
        }
    };
    let mut engine = resume_or_fresh(store, &key, leg, index)?;
    loop {
        let pause_at = engine.now().saturating_add(every);
        if engine.advance(pause_at) {
            break;
        }
        let snapshot = engine.snapshot().to_json();
        let io_started = Instant::now();
        let persisted = store.put(&key, snapshot.as_bytes());
        METRICS
            .sweep
            .store_io_nanos
            .add(u64::try_from(io_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match persisted {
            Ok(()) => METRICS.sweep.checkpoints_written.inc(),
            Err(e) => warn!(
                "sweep",
                "could not checkpoint point {index} ({}) at cycle {}: {e}",
                leg.arch.label(),
                engine.now()
            ),
        }
    }
    let (stats, _) = engine.finish();
    // The leg is complete and its final record is about to be stored; the
    // rolling checkpoint has served its purpose.
    if let Err(e) = store.remove(&key) {
        warn!("sweep", "could not drop finished checkpoint for point {index}: {e}");
    }
    Ok(TracedRun {
        stats,
        wall_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

/// Restores `leg`'s engine from its stored checkpoint when one exists and
/// is valid; builds a fresh engine (cycle 0) otherwise. Never fails for a
/// checkpoint-related reason.
fn resume_or_fresh(
    store: &Store,
    key: &Fingerprint,
    leg: &ExperimentSpec,
    index: usize,
) -> Result<Engine, String> {
    match store.get(key) {
        Ok(Lookup::Hit(bytes)) => {
            let restored = std::str::from_utf8(&bytes)
                .map_err(|e| format!("checkpoint is not UTF-8: {e}"))
                .and_then(|text| {
                    EngineSnapshot::from_json(text).map_err(|e| e.to_string())
                })
                .and_then(|snap| Engine::restore(&snap).map_err(|e| e.to_string()));
            match restored {
                Ok(engine) => {
                    METRICS.sweep.checkpoints_resumed.inc();
                    info!(
                        "sweep",
                        "point {index} ({}) resumed from checkpoint at cycle {}",
                        leg.arch.label(),
                        engine.now()
                    );
                    return Ok(engine);
                }
                Err(e) => warn!(
                    "sweep",
                    "checkpoint for point {index} ({}) is unusable, recomputing from cycle 0: {e}",
                    leg.arch.label()
                ),
            }
        }
        Ok(Lookup::Miss) => {}
        Ok(Lookup::Quarantined) => warn!(
            "sweep",
            "checkpoint for point {index} ({}) was corrupt; quarantined, recomputing from cycle 0",
            leg.arch.label()
        ),
        Err(e) => {
            warn!("sweep", "checkpoint lookup failed for point {index}: {e}");
        }
    }
    leg.engine()
}

/// `0` means "use every available hardware thread".
pub(crate) fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `0..n` on up to `jobs` scoped worker threads.
///
/// Work distribution is a single atomic next-index counter; collection is a
/// pre-allocated slot per index, each written exactly once by whichever
/// worker claimed it — no mutex, no channel, and the output order is the
/// input order by construction. Crate-visible so the divergence heatmap
/// reuses the same deterministic-order runner.
pub(crate) fn parallel_map<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                METRICS.sweep.workers_spawned.inc();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let busy_started = Instant::now();
                    let value = f(i);
                    METRICS
                        .sweep
                        .worker_busy_nanos
                        .add(u64::try_from(busy_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    assert!(slots[i].set(value).is_ok(), "sweep slot {i} written twice");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every claimed slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::compare;
    use proptest::prelude::*;

    /// A grid small enough for tests: one panel, 2×2 points, light
    /// workloads.
    fn mini_grid(fault: FaultFamily, seed: u64) -> SweepGrid {
        let mut grid = match fault {
            FaultFamily::Cache => SweepGrid::figure5_panel(64, seed),
            FaultFamily::Sync => SweepGrid::figure6_panel(64, seed),
        };
        grid.run_lengths = vec![8.0, 32.0];
        grid.latencies = vec![50, 200];
        grid.base = ExperimentSpec { threads: 12, work_per_thread: 3_000, ..grid.base };
        grid
    }

    #[test]
    fn point_at_finds_cli_coordinates_on_the_paper_grid() {
        // The coordinates `rr bench` and `rr trace --point 64,8,400` use.
        let grid = SweepGrid::figure5(1993);
        let p = grid.point_at(64, 8.0, 400).expect("64,8,400 is on the Figure 5 grid");
        assert_eq!((p.file_size, p.run_length, p.latency), (64, 8.0, 400));
        assert_eq!(grid.points()[p.index], p, "index agrees with canonical order");
        assert!(grid.point_at(65, 8.0, 400).is_none());
        assert!(grid.point_at(64, 9.0, 400).is_none());
        assert!(grid.point_at(64, 8.0, 401).is_none());
    }

    #[test]
    fn point_at_matches_fractional_run_lengths_canonically() {
        // An axis value carrying float-arithmetic noise must still be
        // addressable by the clean decimal a user would type...
        let mut grid = mini_grid(FaultFamily::Cache, 5);
        grid.run_lengths = vec![0.1 + 0.2, 8.0];
        assert_ne!((0.1f64 + 0.2).to_bits(), 0.3f64.to_bits(), "premise of the test");
        let p = grid.point_at(64, 0.3, 50).expect("canonical match finds the noisy axis");
        assert_eq!(p.run_length, 0.1 + 0.2);
        // ...and the other way around: a noisy coordinate finds a clean axis.
        grid.run_lengths = vec![0.3, 8.0];
        let p = grid.point_at(64, 0.1 + 0.2, 50).unwrap();
        assert_eq!(p.run_length, 0.3);
        // Neighboring axis values never cross-match.
        let p = grid.point_at(64, 8.0, 50).unwrap();
        assert_eq!(p.run_length, 8.0);
        assert!(grid.point_at(64, 0.4, 50).is_none());
    }

    #[test]
    fn expansion_is_canonically_ordered() {
        let grid = SweepGrid::figure5(7);
        let points = grid.points();
        assert_eq!(points.len(), 3 * 3 * 6);
        assert_eq!(points.len(), grid.len());
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.spec.seed, 7);
        }
        // File size outermost, then run length, then latency.
        assert_eq!((points[0].file_size, points[0].run_length, points[0].latency), (64, 8.0, 20));
        assert_eq!(points[1].latency, 50);
        assert_eq!(points[6].run_length, 32.0);
        assert_eq!(points[18].file_size, 128);
        let serial: Vec<_> = points.iter().map(|p| (p.file_size, p.run_length, p.latency)).collect();
        let mut sorted = serial.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(serial, sorted, "canonical order is the sorted cross product");
    }

    #[test]
    fn point_at_finds_exact_grid_coordinates() {
        let grid = SweepGrid::figure5(7);
        let p = grid.point_at(128, 32.0, 100).expect("on-grid point");
        assert_eq!((p.file_size, p.run_length, p.latency), (128, 32.0, 100));
        assert_eq!(p.spec.seed, 7);
        assert!(grid.point_at(128, 32.0, 99).is_none(), "off-grid latency");
        assert!(grid.point_at(96, 32.0, 100).is_none(), "off-grid file size");
        assert!(grid.point_at(128, 16.0, 100).is_none(), "off-grid run length");
    }

    #[test]
    fn homogeneous_grid_fixes_context_size() {
        let grid = SweepGrid::homogeneous(128, 16, 3);
        assert_eq!(grid.context_size, ContextSizeDist::Fixed(16));
        assert_eq!(grid.file_sizes, vec![128]);
        assert_eq!(grid.seed(), 3);
        assert!(!grid.is_empty());
    }

    /// The tentpole guarantee: any worker count produces bit-identical
    /// results, and those results equal the plain serial `compare` loop.
    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let grid = mini_grid(FaultFamily::Cache, 11);
        let serial = SweepRunner::new(1).with_progress(false).run(&grid).unwrap();
        let parallel = SweepRunner::new(4).with_progress(false).run(&grid).unwrap();
        assert_eq!(serial.jobs, 1);
        assert_eq!(parallel.jobs, 4);
        assert_eq!(serial.report.points.len(), 4);
        assert!(!serial.cache.enabled && serial.cache.hits == 0, "no store attached");
        for (s, p) in serial.report.points.iter().zip(&parallel.report.points) {
            // Wall-clock fields legitimately differ; everything simulated
            // must not.
            assert_eq!(s.figure, p.figure);
            assert_eq!(s.fixed, p.fixed);
            assert_eq!(s.flexible, p.flexible);
            assert_eq!((s.index, s.file_size, s.run_length, s.latency, s.seed),
                       (p.index, p.file_size, p.run_length, p.latency, p.seed));
            assert_eq!(s.schema_version, SWEEP_SCHEMA_VERSION);
        }
        // And both match the pre-runner serial path.
        for (point, report) in grid.points().iter().zip(&serial.report.points) {
            assert_eq!(compare(&point.spec).unwrap(), report.figure.comparison);
        }
    }

    #[test]
    fn run_specs_matches_direct_runs() {
        let specs: Vec<ExperimentSpec> = mini_grid(FaultFamily::Cache, 5)
            .points()
            .into_iter()
            .map(|p| p.spec)
            .collect();
        let traced = SweepRunner::new(3).with_progress(false).run_specs(&specs).unwrap();
        assert_eq!(traced.len(), specs.len());
        for (spec, t) in specs.iter().zip(&traced) {
            assert_eq!(spec.run().unwrap(), t.stats);
        }
    }

    #[test]
    fn report_slices_and_serializes() {
        let mut grid = mini_grid(FaultFamily::Cache, 9);
        grid.file_sizes = vec![64, 128];
        grid.run_lengths = vec![16.0];
        grid.latencies = vec![100];
        let run = SweepRunner::new(2).with_progress(false).run(&grid).unwrap();
        let report = &run.report;
        assert_eq!(report.figure_points().len(), 2);
        assert_eq!(report.panel(64).len(), 1);
        assert_eq!(report.panel(128).len(), 1);
        assert_eq!(report.panel(256).len(), 0);
        assert!(report.points_wall_nanos() > 0);
        assert!(report.slowest_point().is_some());
        let json = report.to_json_pretty().unwrap();
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(&back, report);
    }

    #[test]
    fn foreign_schema_versions_are_rejected() {
        let grid = SweepGrid { latencies: vec![100], run_lengths: vec![8.0], ..mini_grid(FaultFamily::Cache, 13) };
        let run = SweepRunner::new(1).with_progress(false).run(&grid).unwrap();
        let json = run.report.to_json_pretty().unwrap();

        let future_report = json.replacen(
            &format!("\"schema_version\": {SWEEP_SCHEMA_VERSION}"),
            "\"schema_version\": 99",
            1,
        );
        match SweepReport::from_json(&future_report) {
            Err(StoreError::SchemaMismatch { what: "sweep report", found: 99, .. }) => {}
            other => panic!("expected report-level schema mismatch, got {other:?}"),
        }

        // Flip only a *point's* version (the report-level one is the first
        // occurrence; skip past it).
        let head = json.find(&format!("\"schema_version\": {SWEEP_SCHEMA_VERSION}")).unwrap();
        let tail = json[head + 1..]
            .replacen(
                &format!("\"schema_version\": {SWEEP_SCHEMA_VERSION}"),
                "\"schema_version\": 99",
                1,
            );
        let future_point = format!("{}{}", &json[..head + 1], tail);
        match SweepReport::from_json(&future_point) {
            Err(StoreError::SchemaMismatch { what: "point report", found: 99, .. }) => {}
            other => panic!("expected point-level schema mismatch, got {other:?}"),
        }

        assert!(SweepReport::from_json("not json").is_err());
    }

    #[test]
    fn parallel_map_is_exhaustive_and_ordered() {
        let squares = parallel_map(100, 7, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, v) in squares.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Every point of a randomized sweep obeys the cycle-accounting
        /// identity on both architectures — parallel execution loses no
        /// cycles to any bucket.
        #[test]
        fn every_sweep_point_accounts_all_cycles(
            seed in 1u64..10_000,
            sync in any::<bool>(),
            r in prop_oneof![Just(8.0f64), Just(32.0), Just(128.0)],
            l in prop_oneof![Just(50u64), Just(200), Just(500)],
        ) {
            let family = if sync { FaultFamily::Sync } else { FaultFamily::Cache };
            let mut grid = mini_grid(family, seed);
            grid.run_lengths = vec![r];
            grid.latencies = vec![l, l + 25];
            let run = SweepRunner::new(2).with_progress(false).run(&grid).unwrap();
            prop_assert_eq!(run.report.points.len(), 2);
            for p in &run.report.points {
                prop_assert_eq!(p.fixed.accounted_cycles(), p.fixed.total_cycles);
                prop_assert_eq!(p.flexible.accounted_cycles(), p.flexible.total_cycles);
                prop_assert_eq!(p.seed, seed);
            }
        }
    }
}
