//! The crash-safe job journal behind the `rr serve` daemon.
//!
//! The daemon's job table lives in memory; this module gives it a durable
//! shadow so `kill -9` loses nothing that was acknowledged to a client. The
//! format is deliberately primitive — JSON Lines, append-only, one
//! [`JournalRecord`] per line, fsync'd per append — because primitive is
//! what survives: a torn final line (the write the crash interrupted) is
//! detected and dropped during [`JobJournal::replay`], and any other
//! damaged line is skipped with a warning rather than poisoning the
//! records around it. Replay therefore *always* succeeds; corruption can
//! only cost the records it physically overlaps.
//!
//! Event grammar (`event` field):
//!
//! | event       | meaning                                             |
//! |-------------|-----------------------------------------------------|
//! | `submitted` | job accepted; carries label, fingerprint, payload   |
//! | `finished`  | job reached `done`/`failed`; carries result/error   |
//! | `cancelled` | queued job cancelled via `DELETE /jobs/{id}`        |
//! | `expired`   | terminal ticket dropped (TTL or manual `DELETE`)    |
//!
//! Reducing a journal replays submission order: a `submitted` with no
//! `finished` is exactly a job the crash interrupted — queued or mid-run,
//! indistinguishable and treated identically: re-queued for execution,
//! where the result store and checkpoint records make the rerun cheap.
//! After reduction the daemon rewrites the journal compacted (tmp+rename),
//! so it cannot grow without bound across restarts and any tolerated
//! damage is healed on the spot.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rr_telemetry::{warn, METRICS};

/// Version stamped into every record; replay skips records from a future
/// schema instead of misreading them.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// One journal line. Every field is always present on the wire (the
/// vendored serde has no `#[serde(default)]`); fields an event does not
/// use are `null`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Schema version ([`JOURNAL_SCHEMA_VERSION`]).
    pub v: u32,
    /// `"submitted"`, `"finished"`, `"cancelled"`, or `"expired"`.
    pub event: String,
    /// The job id the event concerns.
    pub id: u64,
    /// Human-readable job label (`submitted` only).
    pub label: Option<String>,
    /// Dedup fingerprint (`submitted` only).
    pub fingerprint: Option<String>,
    /// The job payload, serialized (`submitted` only).
    pub payload: Option<String>,
    /// Terminal state, `"done"` or `"failed"` (`finished` only).
    pub state: Option<String>,
    /// The result payload (`finished` + `done` only).
    pub result: Option<String>,
    /// The failure message (`finished` + `failed` only).
    pub error: Option<String>,
}

impl JournalRecord {
    fn base(event: &str, id: u64) -> JournalRecord {
        JournalRecord {
            v: JOURNAL_SCHEMA_VERSION,
            event: event.to_string(),
            id,
            label: None,
            fingerprint: None,
            payload: None,
            state: None,
            result: None,
            error: None,
        }
    }

    /// A job was accepted into the queue.
    pub fn submitted(id: u64, label: &str, fingerprint: &str, payload: String) -> JournalRecord {
        JournalRecord {
            label: Some(label.to_string()),
            fingerprint: Some(fingerprint.to_string()),
            payload: Some(payload),
            ..JournalRecord::base("submitted", id)
        }
    }

    /// A job finished successfully; the result rides along so a restarted
    /// daemon can serve `GET /jobs/{id}/result` without recomputing.
    pub fn finished_ok(id: u64, result: String) -> JournalRecord {
        JournalRecord {
            state: Some("done".to_string()),
            result: Some(result),
            ..JournalRecord::base("finished", id)
        }
    }

    /// A job failed; the error message survives the restart too.
    pub fn finished_err(id: u64, error: String) -> JournalRecord {
        JournalRecord {
            state: Some("failed".to_string()),
            error: Some(error),
            ..JournalRecord::base("finished", id)
        }
    }

    /// A queued job was cancelled.
    pub fn cancelled(id: u64) -> JournalRecord {
        JournalRecord::base("cancelled", id)
    }

    /// A terminal ticket was dropped (TTL expiry or `DELETE`).
    pub fn expired(id: u64) -> JournalRecord {
        JournalRecord::base("expired", id)
    }
}

/// What [`JobJournal::replay`] salvaged.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Intact records, in file order.
    pub records: Vec<JournalRecord>,
    /// Lines that did not parse (torn tail, bit rot) and were skipped.
    pub skipped: usize,
}

/// The append handle. One per daemon; appends are serialized internally so
/// handler threads, workers, and the TTL janitor can share it.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    file: Mutex<File>,
    /// Records on disk: what was already there at open plus every
    /// successful append since. Feeds `/health`'s journal statistics.
    entries: AtomicU64,
}

impl JobJournal {
    /// Opens `path` for appending, creating it (and missing parent
    /// directories) as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the caller decides whether to run
    /// journalless or refuse to start.
    pub fn open(path: &Path) -> io::Result<JobJournal> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let existing = match fs::read_to_string(path) {
            Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count() as u64,
            Err(_) => 0,
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JobJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            entries: AtomicU64::new(existing),
        })
    }

    /// Records on disk: lines present when the journal was opened plus
    /// every successful [`JobJournal::append`] since.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably (write + flush + fsync). The record is
    /// on disk when this returns.
    ///
    /// # Errors
    ///
    /// Propagates write failures; callers log and carry on — a sick
    /// journal must never take down a healthy daemon.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        let started = Instant::now();
        let result = {
            let mut file = self.file.lock().expect("journal lock");
            file.write_all(line.as_bytes())
                .and_then(|()| file.flush())
                .and_then(|()| file.sync_data())
        };
        METRICS.spans.journal_append.observe_since(started);
        if result.is_ok() {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Reads every intact record from `path`. Infallible by design: a
    /// missing file is an empty journal, a torn or damaged line is skipped
    /// (and counted) with a warning, and everything else is returned in
    /// file order.
    pub fn replay(path: &Path) -> ReplaySummary {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return ReplaySummary::default(),
            Err(e) => {
                warn!("journal", "cannot read `{}`: {e}; treating as empty", path.display());
                return ReplaySummary::default();
            }
        };
        let mut summary = ReplaySummary::default();
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
        let torn_tail = !text.is_empty() && !text.ends_with('\n');
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let parsed = serde_json::from_str::<JournalRecord>(line)
                .map_err(|e| e.to_string())
                .and_then(|rec| {
                    if rec.v == JOURNAL_SCHEMA_VERSION {
                        Ok(rec)
                    } else {
                        Err(format!("schema version {} (this build speaks {})",
                            rec.v, JOURNAL_SCHEMA_VERSION))
                    }
                });
            match parsed {
                Ok(rec) => summary.records.push(rec),
                Err(reason) if last && torn_tail => {
                    // The expected crash signature: the append the kill
                    // interrupted. Quietly drop it.
                    warn!(
                        "journal",
                        "`{}`: dropping torn final record ({reason})",
                        path.display()
                    );
                    summary.skipped += 1;
                }
                Err(reason) => {
                    warn!(
                        "journal",
                        "`{}` line {}: skipping damaged record ({reason})",
                        path.display(),
                        i + 1
                    );
                    summary.skipped += 1;
                }
            }
        }
        summary
    }

    /// Atomically replaces `path` with exactly `records` (tmp + rename):
    /// the restart-time compaction that keeps journals bounded and heals
    /// tolerated damage.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the previous journal file
    /// is left untouched.
    pub fn rewrite(path: &Path, records: &[JournalRecord]) -> io::Result<()> {
        let mut text = String::new();
        for record in records {
            text.push_str(
                &serde_json::to_string(record)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            );
            text.push('\n');
        }
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_data()?;
        }
        fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let mut p = std::env::temp_dir();
            p.push(format!("rr-journal-test-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            TempDir(p)
        }

        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_then_replay_round_trips_every_event() {
        let dir = TempDir::new("roundtrip");
        let path = dir.file("jobs.jsonl");
        let journal = JobJournal::open(&path).unwrap();
        let records = vec![
            JournalRecord::submitted(1, "fig5 F=64", "fp-1", "{\"grid\":1}".into()),
            JournalRecord::finished_ok(1, "{\"report\":true}".into()),
            JournalRecord::submitted(2, "fig6", "fp-2", "{\"grid\":2}".into()),
            JournalRecord::cancelled(2),
            JournalRecord::submitted(3, "boom", "fp-3", "{\"grid\":3}".into()),
            JournalRecord::finished_err(3, "spec was bad".into()),
            JournalRecord::expired(1),
        ];
        for rec in &records {
            journal.append(rec).unwrap();
        }
        let replay = JobJournal::replay(&path);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.records, records);
    }

    #[test]
    fn missing_journal_is_empty_not_an_error() {
        let dir = TempDir::new("missing");
        assert_eq!(JobJournal::replay(&dir.file("nope.jsonl")), ReplaySummary::default());
    }

    #[test]
    fn torn_tail_is_dropped_and_the_prefix_survives() {
        let dir = TempDir::new("torn");
        let path = dir.file("jobs.jsonl");
        let journal = JobJournal::open(&path).unwrap();
        journal.append(&JournalRecord::submitted(1, "a", "fa", "{}".into())).unwrap();
        journal.append(&JournalRecord::finished_ok(1, "r".into())).unwrap();
        // Simulate the kill mid-append: a record cut off without its
        // newline.
        let mut raw = fs::read_to_string(&path).unwrap();
        raw.push_str("{\"v\": 1, \"event\": \"submi");
        fs::write(&path, raw).unwrap();

        let replay = JobJournal::replay(&path);
        assert_eq!(replay.records.len(), 2, "intact prefix fully recovered");
        assert_eq!(replay.skipped, 1, "the torn tail is counted, not fatal");
        assert_eq!(replay.records[1], JournalRecord::finished_ok(1, "r".into()));
    }

    #[test]
    fn mid_file_garbage_and_foreign_versions_are_skipped() {
        let dir = TempDir::new("garbage");
        let path = dir.file("jobs.jsonl");
        let good_a = JournalRecord::submitted(1, "a", "fa", "{}".into());
        let good_b = JournalRecord::submitted(2, "b", "fb", "{}".into());
        let raw = format!(
            "{}\nnot json at all\n{{\"v\": 99, \"event\": \"submitted\", \"id\": 5}}\n{}\n",
            serde_json::to_string(&good_a).unwrap(),
            serde_json::to_string(&good_b).unwrap(),
        );
        fs::create_dir_all(&dir.0).unwrap();
        fs::write(&path, raw).unwrap();
        let replay = JobJournal::replay(&path);
        assert_eq!(replay.records, vec![good_a, good_b]);
        assert_eq!(replay.skipped, 2, "garbage line and foreign version both skipped");
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let dir = TempDir::new("rewrite");
        let path = dir.file("jobs.jsonl");
        let journal = JobJournal::open(&path).unwrap();
        for id in 1..=5 {
            journal.append(&JournalRecord::submitted(id, "x", "f", "{}".into())).unwrap();
            journal.append(&JournalRecord::finished_ok(id, "r".into())).unwrap();
        }
        let compacted = vec![JournalRecord::submitted(5, "x", "f", "{}".into())];
        JobJournal::rewrite(&path, &compacted).unwrap();
        let replay = JobJournal::replay(&path);
        assert_eq!(replay.records, compacted);
        assert!(!path.with_extension("jsonl.tmp").exists(), "no tmp file left behind");
        // The rewritten journal accepts further appends.
        let journal = JobJournal::open(&path).unwrap();
        journal.append(&JournalRecord::finished_ok(5, "r".into())).unwrap();
        assert_eq!(JobJournal::replay(&path).records.len(), 2);
    }

    #[test]
    fn entries_counts_prior_lines_plus_appends() {
        let dir = TempDir::new("entries");
        let path = dir.file("jobs.jsonl");
        let journal = JobJournal::open(&path).unwrap();
        assert_eq!(journal.entries(), 0, "fresh journal is empty");
        journal.append(&JournalRecord::submitted(1, "a", "fa", "{}".into())).unwrap();
        journal.append(&JournalRecord::finished_ok(1, "r".into())).unwrap();
        assert_eq!(journal.entries(), 2);
        // Reopening counts what is already on disk.
        let reopened = JobJournal::open(&path).unwrap();
        assert_eq!(reopened.entries(), 2);
        reopened.append(&JournalRecord::expired(1)).unwrap();
        assert_eq!(reopened.entries(), 3);
    }
}
