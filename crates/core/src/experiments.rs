//! The experiment harness: one paper experiment = one [`ExperimentSpec`].
//!
//! Every figure in the paper compares two architectures on the same
//! stochastic workload:
//!
//! * **Fixed** — conventional fixed-size hardware contexts (32 registers
//!   each), zero-cost context management (the deliberately conservative
//!   baseline of Figure 4).
//! * **Flexible** — register relocation with a software allocator (the
//!   general-purpose bitmap allocator by default).
//!
//! Cache-fault experiments (section 3.2) use constant latency, `S` = 6 and
//! never unload contexts; synchronization experiments (section 3.3) use
//! exponential latency, `S` = 8, ring-walk dispatch and the two-phase
//! competitive unloading policy.

use serde::{Deserialize, Serialize};

use rr_alloc::{
    AllocCosts, AnyAllocator, BitmapAllocator, FirstFitAllocator, FixedSlots,
    LookupAllocator,
};
use rr_runtime::{Event, EventSink, NullSink, RecordingSink, SchedCosts, UnloadPolicyKind};
use rr_sim::{Engine, SimOptions, SimStats, TracedRun};
use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

/// Which architecture handles contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    /// Fixed 32-register hardware windows with free context operations.
    Fixed,
    /// Register relocation with the general-purpose bitmap allocator
    /// (Appendix A costs: 25/15/5 cycles).
    Flexible,
    /// Register relocation assuming a find-first-set instruction
    /// (the paper's MC88000 `FF1` footnote: ~15-cycle allocation).
    FlexibleFf1,
    /// Register relocation with the specialized two-size lookup-table
    /// allocator of the section 3.3 discussion (sizes 16 and 32).
    FlexibleLookup,
    /// Am29000-style ADD relocation with arbitrary-size first-fit contexts
    /// (the Related Work comparison): no power-of-two rounding, but costlier
    /// allocation software. The decode-path hardware cost the paper objects
    /// to (a carry chain instead of an OR) is *not* modelled here.
    FlexibleAdd,
}

impl Arch {
    /// Builds the allocator realizing this architecture over `file_size`
    /// registers.
    ///
    /// # Errors
    ///
    /// Returns a reason if the file geometry is unsupported.
    pub fn make_allocator(&self, file_size: u32) -> Result<AnyAllocator, String> {
        Ok(match self {
            Arch::Fixed => FixedSlots::new(file_size).map_err(|e| e.to_string())?.into(),
            Arch::Flexible => {
                BitmapAllocator::new(file_size).map_err(|e| e.to_string())?.into()
            }
            Arch::FlexibleFf1 => BitmapAllocator::new(file_size)
                .map_err(|e| e.to_string())?
                .with_costs(AllocCosts::ff1())
                .into(),
            Arch::FlexibleLookup => {
                LookupAllocator::new(file_size, 16, 32).map_err(|e| e.to_string())?.into()
            }
            Arch::FlexibleAdd => {
                FirstFitAllocator::new(file_size).map_err(|e| e.to_string())?.into()
            }
        })
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Arch::Fixed => "fixed",
            Arch::Flexible => "flexible",
            Arch::FlexibleFf1 => "flexible-ff1",
            Arch::FlexibleLookup => "flexible-lookup",
            Arch::FlexibleAdd => "flexible-add",
        }
    }

    /// Every architecture variant, in declaration order.
    pub const ALL: [Arch; 5] = [
        Arch::Fixed,
        Arch::Flexible,
        Arch::FlexibleFf1,
        Arch::FlexibleLookup,
        Arch::FlexibleAdd,
    ];

    /// Parses a [`Arch::label`] back into its variant — how the CLI's
    /// `--arch-a`/`--arch-b` flags name divergence legs.
    ///
    /// # Errors
    ///
    /// Lists the valid labels when `label` matches none of them.
    pub fn from_label(label: &str) -> Result<Arch, String> {
        Arch::ALL
            .into_iter()
            .find(|a| a.label() == label)
            .ok_or_else(|| {
                let valid: Vec<&str> = Arch::ALL.iter().map(|a| a.label()).collect();
                format!("unknown architecture {label:?}; expected one of {}", valid.join(", "))
            })
    }
}

/// The kind of long-latency fault the workload takes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Remote cache miss: constant service latency, contexts stay resident
    /// (section 3.2).
    Cache {
        /// Latency `L` in cycles.
        latency: u64,
    },
    /// Synchronization wait: exponentially distributed latency, two-phase
    /// competitive unloading (section 3.3).
    Sync {
        /// Mean latency `L` in cycles.
        mean_latency: f64,
    },
    /// Both fault types at once (the section 3 "experiments involving both
    /// types of faults"): each fault is a cache miss with probability
    /// `cache_fraction`, otherwise a synchronization wait. Runs with the
    /// synchronization experiments' scheduling costs and unloading policy.
    Mixed {
        /// Fraction of faults that are cache misses.
        cache_fraction: f64,
        /// Constant cache-miss latency in cycles.
        cache_latency: u64,
        /// Mean synchronization wait in cycles.
        sync_mean_latency: f64,
    },
}

impl FaultKind {
    /// Mean latency `L`.
    pub fn mean_latency(&self) -> f64 {
        match *self {
            FaultKind::Cache { latency } => latency as f64,
            FaultKind::Sync { mean_latency } => mean_latency,
            FaultKind::Mixed { cache_fraction, cache_latency, sync_mean_latency } => {
                cache_fraction * cache_latency as f64
                    + (1.0 - cache_fraction) * sync_mean_latency
            }
        }
    }
}

/// One experiment: a parameter point of Figures 5 or 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Register file size `F`.
    pub file_size: u32,
    /// Architecture under test.
    pub arch: Arch,
    /// Mean run length `R` (geometrically distributed).
    pub run_length: f64,
    /// Fault kind and latency `L`.
    pub fault: FaultKind,
    /// Context size distribution `C`.
    pub context_size: ContextSizeDist,
    /// Thread supply size.
    pub threads: usize,
    /// Useful cycles per thread.
    pub work_per_thread: u64,
    /// Workload and fault-process seed.
    pub seed: u64,
    /// Hard cycle horizon.
    pub max_cycles: u64,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            file_size: 128,
            arch: Arch::Flexible,
            run_length: 32.0,
            fault: FaultKind::Cache { latency: 100 },
            context_size: ContextSizeDist::PAPER_UNIFORM,
            threads: 64,
            work_per_thread: 20_000,
            seed: 1993,
            max_cycles: 60_000_000,
        }
    }
}

impl ExperimentSpec {
    /// The same experiment on a different architecture (the paper's paired
    /// methodology: identical workload, identical seed).
    pub fn with_arch(&self, arch: Arch) -> Self {
        ExperimentSpec { arch, ..*self }
    }

    /// The spec's canonical byte form — what the result cache fingerprints.
    ///
    /// This is the compact JSON of the derived serializer, which is
    /// canonical here: fields serialize in declaration order and floats
    /// print in shortest-roundtrip form, so equal specs always produce
    /// byte-equal JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none occur for this plain struct).
    pub fn canonical_json(&self) -> Result<String, rr_store::StoreError> {
        serde_json::to_string(self)
            .map_err(|e| rr_store::StoreError::json("canonicalizing experiment spec", e))
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Returns a reason if the parameters are invalid for the chosen
    /// architecture (e.g. threads too large for any context).
    pub fn run(&self) -> Result<SimStats, String> {
        Ok(self.engine()?.run())
    }

    /// Runs the experiment with host wall-clock timing (see
    /// [`Engine::run_traced`]). The simulated statistics are bit-identical
    /// to [`ExperimentSpec::run`]'s.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExperimentSpec::run`].
    pub fn run_traced(&self) -> Result<TracedRun, String> {
        Ok(self.engine()?.run_traced())
    }

    /// Runs the experiment with full event recording: every state
    /// transition of the run comes back as a cycle-stamped
    /// [`rr_runtime::Event`], alongside the usual [`SimStats`]. The stats
    /// are bit-identical to [`ExperimentSpec::run`]'s — the recording sink
    /// only observes, never perturbs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExperimentSpec::run`].
    pub fn run_with_events(&self) -> Result<(SimStats, Vec<Event>), String> {
        let (stats, sink) = self.engine_with_sink(RecordingSink::new())?.run_with_sink();
        Ok((stats, sink.into_events()))
    }

    /// Builds the fully configured engine for this spec. Everything the run
    /// depends on — workload, allocator, costs, seed — comes from the spec
    /// itself, so a spec executes identically on any thread in any order.
    ///
    /// Public so callers that need incremental control — the sweep runner's
    /// `--checkpoint-every` path, snapshot tooling, tests — can drive the
    /// engine with [`Engine::advance`]/[`Engine::snapshot`] instead of
    /// the all-at-once [`ExperimentSpec::run`]; both paths produce
    /// bit-identical statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExperimentSpec::run`].
    pub fn engine(&self) -> Result<Engine, String> {
        self.engine_with_sink(NullSink)
    }

    /// [`ExperimentSpec::engine`] with an arbitrary event sink attached.
    /// The sink choice is monomorphized into the engine, so a [`NullSink`]
    /// run carries no tracing overhead at all. Public so the divergence
    /// comparator can build paired recording engines from two specs.
    pub fn engine_with_sink<S: EventSink>(&self, sink: S) -> Result<Engine<S>, String> {
        let (latency_dist, sched, policy, mut opts) = match self.fault {
            FaultKind::Cache { latency } => (
                Dist::Constant(latency),
                SchedCosts::cache_experiments(),
                UnloadPolicyKind::Never,
                SimOptions::cache_experiments(),
            ),
            FaultKind::Sync { mean_latency } => (
                Dist::Exponential { mean: mean_latency },
                SchedCosts::sync_experiments(),
                UnloadPolicyKind::two_phase(),
                SimOptions::sync_experiments(),
            ),
            FaultKind::Mixed { cache_fraction, cache_latency, sync_mean_latency } => (
                Dist::CacheSyncMix {
                    p_cache: cache_fraction,
                    cache_latency,
                    sync_mean: sync_mean_latency,
                },
                SchedCosts::sync_experiments(),
                UnloadPolicyKind::two_phase(),
                SimOptions::sync_experiments(),
            ),
        };
        opts.max_cycles = self.max_cycles;
        let workload = WorkloadBuilder::new()
            .threads(self.threads)
            .run_length(Dist::Geometric { mean: self.run_length })
            .latency(latency_dist)
            .context_size(self.context_size)
            .work_per_thread(self.work_per_thread)
            .seed(self.seed)
            .build()?;
        let alloc = self.arch.make_allocator(self.file_size)?;
        Engine::with_sink(alloc, sched, policy, workload, opts, sink)
    }
}

/// Paired fixed-vs-flexible result at one parameter point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonPoint {
    /// Register file size `F`.
    pub file_size: u32,
    /// Mean run length `R`.
    pub run_length: f64,
    /// Mean latency `L`.
    pub latency: f64,
    /// Steady-state efficiency of the fixed baseline.
    pub fixed_efficiency: f64,
    /// Steady-state efficiency with register relocation.
    pub flexible_efficiency: f64,
    /// Time-averaged resident contexts, fixed.
    pub fixed_avg_resident: f64,
    /// Time-averaged resident contexts, flexible.
    pub flexible_avg_resident: f64,
}

impl ComparisonPoint {
    /// flexible / fixed efficiency ratio.
    pub fn speedup(&self) -> f64 {
        if self.fixed_efficiency == 0.0 {
            f64::INFINITY
        } else {
            self.flexible_efficiency / self.fixed_efficiency
        }
    }
}

/// A [`ComparisonPoint`] together with the full per-run observability the
/// sweep runner reports: both architectures' complete [`SimStats`] and their
/// host wall-clock times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedComparison {
    /// The plotted summary point.
    pub point: ComparisonPoint,
    /// Full statistics of the fixed-architecture run.
    pub fixed: SimStats,
    /// Full statistics of the flexible-architecture run.
    pub flexible: SimStats,
    /// Host wall-clock nanoseconds of the fixed run.
    pub fixed_wall_nanos: u64,
    /// Host wall-clock nanoseconds of the flexible run.
    pub flexible_wall_nanos: u64,
}

/// Runs the paired comparison the paper plots: solid (fixed) vs dotted
/// (flexible) at one `(F, R, L)` point.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn compare(spec: &ExperimentSpec) -> Result<ComparisonPoint, String> {
    Ok(compare_traced(spec)?.point)
}

/// Like [`compare`], but keeps both runs' full [`SimStats`] and wall-clock
/// times. `compare` delegates here, so the summary point is computed by one
/// code path regardless of how much observability the caller wants.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn compare_traced(spec: &ExperimentSpec) -> Result<TracedComparison, String> {
    compare_traced_with(spec, |leg| leg.run_traced())
}

/// [`compare_traced`] with a pluggable per-leg executor: `run_leg` is
/// called once per architecture with the leg's complete spec (`arch`
/// already substituted) and must return that leg's [`TracedRun`]. The
/// sweep runner's `--checkpoint-every` path plugs in an incremental
/// snapshot-as-you-go executor here; the summary point is still computed
/// by this one code path, so however a leg was executed, the reported
/// science has one shape.
///
/// # Errors
///
/// Propagates leg failures.
pub fn compare_traced_with(
    spec: &ExperimentSpec,
    mut run_leg: impl FnMut(&ExperimentSpec) -> Result<TracedRun, String>,
) -> Result<TracedComparison, String> {
    let fixed = run_leg(&spec.with_arch(Arch::Fixed))?;
    let flexible = run_leg(&spec.with_arch(Arch::Flexible))?;
    let point = ComparisonPoint {
        file_size: spec.file_size,
        run_length: spec.run_length,
        latency: spec.fault.mean_latency(),
        fixed_efficiency: fixed.stats.efficiency(),
        flexible_efficiency: flexible.stats.efficiency(),
        fixed_avg_resident: fixed.stats.avg_resident,
        flexible_avg_resident: flexible.stats.avg_resident,
    };
    Ok(TracedComparison {
        point,
        fixed: fixed.stats,
        flexible: flexible.stats,
        fixed_wall_nanos: fixed.wall_nanos,
        flexible_wall_nanos: flexible.wall_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_alloc::ContextAllocator;

    fn quick(spec: ExperimentSpec) -> ExperimentSpec {
        ExperimentSpec { threads: 24, work_per_thread: 6_000, ..spec }
    }

    #[test]
    fn cache_experiment_runs_both_archs() {
        let spec = quick(ExperimentSpec::default());
        let point = compare(&spec).unwrap();
        assert!(point.fixed_efficiency > 0.0);
        assert!(point.flexible_efficiency > 0.0);
        assert!(point.flexible_avg_resident > point.fixed_avg_resident);
    }

    #[test]
    fn sync_experiment_runs() {
        let spec = quick(ExperimentSpec {
            fault: FaultKind::Sync { mean_latency: 500.0 },
            run_length: 128.0,
            ..ExperimentSpec::default()
        });
        let stats = spec.run().unwrap();
        assert!(stats.efficiency() > 0.0);
        assert!(stats.unloads > 0, "two-phase policy should trigger");
    }

    #[test]
    fn flexible_beats_fixed_on_the_headline_workload() {
        // Linear-regime parameters: short runs, long latency.
        let spec = quick(ExperimentSpec {
            run_length: 16.0,
            fault: FaultKind::Cache { latency: 400 },
            ..ExperimentSpec::default()
        });
        let point = compare(&spec).unwrap();
        assert!(
            point.speedup() > 1.2,
            "flexible {} vs fixed {}",
            point.flexible_efficiency,
            point.fixed_efficiency
        );
    }

    #[test]
    fn mixed_fault_experiment_runs_with_similar_results() {
        // The paper: "We also ran experiments involving both types of
        // faults, with similar results; the main effect was to increase the
        // overall fault rate." Check the mixture sits between the pure
        // processes and flexible still wins.
        let base = quick(ExperimentSpec { run_length: 32.0, ..ExperimentSpec::default() });
        let cache = compare(&ExperimentSpec {
            fault: FaultKind::Cache { latency: 150 },
            ..base
        })
        .unwrap();
        let sync = compare(&ExperimentSpec {
            fault: FaultKind::Sync { mean_latency: 400.0 },
            ..base
        })
        .unwrap();
        let mixed = compare(&ExperimentSpec {
            fault: FaultKind::Mixed {
                cache_fraction: 0.5,
                cache_latency: 150,
                sync_mean_latency: 400.0,
            },
            ..base
        })
        .unwrap();
        let lo = cache.flexible_efficiency.min(sync.flexible_efficiency);
        let hi = cache.flexible_efficiency.max(sync.flexible_efficiency);
        assert!(
            (lo - 0.1..=hi + 0.1).contains(&mixed.flexible_efficiency),
            "mixed {:.3} outside [{lo:.3}, {hi:.3}]",
            mixed.flexible_efficiency
        );
        assert!(mixed.speedup() > 0.95, "flexible holds up under mixing: {mixed:?}");
        assert!(
            (mixed.latency - (0.5 * 150.0 + 0.5 * 400.0)).abs() < 1e-9,
            "mixture mean latency"
        );
    }

    #[test]
    fn all_archs_construct_allocators() {
        for arch in [
            Arch::Fixed,
            Arch::Flexible,
            Arch::FlexibleFf1,
            Arch::FlexibleLookup,
            Arch::FlexibleAdd,
        ] {
            let a = arch.make_allocator(64).unwrap();
            assert_eq!(a.capacity(), 64);
            assert!(!arch.label().is_empty());
        }
    }

    #[test]
    fn add_relocation_packs_more_residents() {
        // Deep linear regime, C ~ U(6,24): ADD's exact-size contexts hold
        // more threads than OR's rounded ones, which in turn beat fixed.
        let spec = quick(ExperimentSpec {
            run_length: 16.0,
            fault: FaultKind::Cache { latency: 600 },
            ..ExperimentSpec::default()
        });
        let or = spec.run().unwrap();
        let add = spec.with_arch(Arch::FlexibleAdd).run().unwrap();
        assert!(
            add.avg_resident > or.avg_resident,
            "add {} vs or {}",
            add.avg_resident,
            or.avg_resident
        );
        assert!(add.efficiency() > or.efficiency() * 0.98);
    }

    #[test]
    fn event_recording_does_not_perturb_the_run() {
        let spec = quick(ExperimentSpec::default());
        let plain = spec.run().unwrap();
        let (recorded, events) = spec.run_with_events().unwrap();
        assert_eq!(plain, recorded, "recording sink must only observe");
        assert!(!events.is_empty());
        assert!(matches!(events.first().unwrap().kind, rr_runtime::EventKind::RunStart { .. }));
        assert!(matches!(events.last().unwrap().kind, rr_runtime::EventKind::RunEnd { .. }));
    }

    #[test]
    fn lookup_arch_rejects_large_files() {
        assert!(Arch::FlexibleLookup.make_allocator(256).is_err());
        assert!(Arch::FlexibleLookup.make_allocator(128).is_ok());
    }
}
