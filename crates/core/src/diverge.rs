//! Divergence exploration over experiment points and grids.
//!
//! `rr-sim`'s [`compare_legs`] answers "where do two engine runs first
//! differ?"; this module lifts that to the experiment harness: build both
//! legs of a grid point from [`ExperimentSpec`]s (any two architectures of
//! the same seeded workload), compare them in lockstep, and — in grid mode
//! — sweep the whole F×R×L figure grid through the shared deterministic
//! [`parallel_map`] runner, caching one compact [`DivergenceRecord`] per
//! point in the result store under the domain-tagged
//! [`crate::cache::diverge_key`]. Warm reruns replay records byte for
//! byte; the records themselves carry no wall-clock fields, so a heatmap
//! rendered from them is identical cold or warm, at any `--jobs`.

use serde::{Deserialize, Serialize};

use rr_runtime::{event_diff, RecordingSink};
use rr_sim::{compare_legs, DivergeConfig, DivergeOutcome};
use rr_store::{Lookup, Store, StoreError};
use rr_telemetry::{warn, METRICS};

use crate::cache;
use crate::experiments::{Arch, ExperimentSpec};
use crate::sweep::{parallel_map, resolve_jobs, SweepGrid};

/// Version of the serialized [`DivergenceRecord`]. Bump on any field
/// change; the decode path refuses other versions (the store salt already
/// isolates simulator generations, this guards the record shape itself).
pub const DIVERGE_SCHEMA_VERSION: u32 = 1;

/// One grid point's divergence comparison, fully specified: the shared
/// workload spec plus the two architecture legs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergePair {
    /// The workload both legs run (its own `arch` field is ignored —
    /// `arch_a`/`arch_b` decide the legs).
    pub spec: ExperimentSpec,
    /// Leg A, by convention the baseline.
    pub arch_a: Arch,
    /// Leg B, by convention the candidate.
    pub arch_b: Arch,
}

impl DivergePair {
    /// The spec of leg A — also the pair's cache identity (see
    /// [`crate::cache::diverge_key`]).
    pub fn spec_a(&self) -> ExperimentSpec {
        self.spec.with_arch(self.arch_a)
    }

    /// The spec of leg B.
    pub fn spec_b(&self) -> ExperimentSpec {
        self.spec.with_arch(self.arch_b)
    }
}

/// Runs one pair's lockstep comparison to completion.
///
/// # Errors
///
/// Propagates engine-construction failures from either spec and comparator
/// failures (including a replay-determinism violation, which is always an
/// error, never a report).
pub fn diverge_point(pair: &DivergePair, cfg: &DivergeConfig) -> Result<DivergeOutcome, String> {
    let timer = METRICS.spans.diverge_compare.start();
    let a = pair.spec_a().engine_with_sink(RecordingSink::new())?;
    let b = pair.spec_b().engine_with_sink(RecordingSink::new())?;
    let outcome = compare_legs(a, b, (pair.arch_a.label(), pair.arch_b.label()), cfg)?;
    drop(timer);
    Ok(outcome)
}

/// The compact, persistable summary of one pair's comparison — what the
/// heatmap caches per grid point. Deliberately free of wall-clock fields
/// and event payloads: the record's bytes depend only on the spec, the
/// legs, and the comparator config, so warm store hits reproduce a cold
/// run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceRecord {
    /// [`DIVERGE_SCHEMA_VERSION`] this record was produced under.
    pub schema_version: u32,
    /// Register file size `F`.
    pub file_size: u32,
    /// Mean run length `R`.
    pub run_length: f64,
    /// Mean fault latency `L`.
    pub latency: f64,
    /// Workload seed.
    pub seed: u64,
    /// Leg A's architecture label.
    pub arch_a: String,
    /// Leg B's architecture label.
    pub arch_b: String,
    /// Lockstep window the comparison used.
    pub window: u64,
    /// Cycle of the first divergent event, `None` when the legs never
    /// diverged.
    pub divergence_cycle: Option<u64>,
    /// Absolute stream index of the divergent position.
    pub event_index: Option<u64>,
    /// Kind tag of leg A's event at the divergence (`None`: A was absent
    /// there, or no divergence).
    pub first_kind_a: Option<String>,
    /// Kind tag of leg B's event at the divergence.
    pub first_kind_b: Option<String>,
    /// Leg A's steady-state efficiency over its full run.
    pub efficiency_a: f64,
    /// Leg B's steady-state efficiency over its full run.
    pub efficiency_b: f64,
    /// Leg A's total run length in cycles.
    pub total_cycles_a: u64,
    /// Leg B's total run length in cycles.
    pub total_cycles_b: u64,
}

impl DivergenceRecord {
    /// Condenses a full comparison outcome into the persistable record.
    pub fn from_outcome(pair: &DivergePair, cfg: &DivergeConfig, out: &DivergeOutcome) -> Self {
        let d = out.divergence.as_ref();
        DivergenceRecord {
            schema_version: DIVERGE_SCHEMA_VERSION,
            file_size: pair.spec.file_size,
            run_length: pair.spec.run_length,
            latency: pair.spec.fault.mean_latency(),
            seed: pair.spec.seed,
            arch_a: pair.arch_a.label().to_string(),
            arch_b: pair.arch_b.label().to_string(),
            window: cfg.window,
            divergence_cycle: d.map(|d| d.cycle),
            event_index: d.map(|d| d.event_index),
            first_kind_a: d
                .and_then(|d| d.first_a.as_ref())
                .map(|e| event_diff::kind_tag(e).to_string()),
            first_kind_b: d
                .and_then(|d| d.first_b.as_ref())
                .map(|e| event_diff::kind_tag(e).to_string()),
            efficiency_a: out.a.stats.efficiency(),
            efficiency_b: out.b.stats.efficiency(),
            total_cycles_a: out.a.stats.total_cycles,
            total_cycles_b: out.b.stats.total_cycles,
        }
    }

    /// The divergence "magnitude" the heatmap renders alongside the cycle:
    /// leg B's efficiency minus leg A's (positive = the candidate wins).
    pub fn efficiency_delta(&self) -> f64 {
        self.efficiency_b - self.efficiency_a
    }

    /// Serializes the record as compact JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, StoreError> {
        serde_json::to_string(self).map_err(|e| StoreError::json("serializing divergence record", e))
    }

    /// Parses a serialized record, refusing foreign schema versions.
    ///
    /// # Errors
    ///
    /// [`StoreError::Json`] on malformed JSON, [`StoreError::SchemaMismatch`]
    /// on a foreign [`DIVERGE_SCHEMA_VERSION`].
    pub fn from_json(json: &str) -> Result<DivergenceRecord, StoreError> {
        let record: DivergenceRecord = serde_json::from_str(json)
            .map_err(|e| StoreError::json("parsing divergence record", e))?;
        if record.schema_version != DIVERGE_SCHEMA_VERSION {
            return Err(StoreError::SchemaMismatch {
                what: "divergence record",
                found: record.schema_version,
                expected: DIVERGE_SCHEMA_VERSION,
            });
        }
        Ok(record)
    }

    /// Whether a cached record answers *this* comparison: the key covers
    /// leg A's spec, so the candidate leg and the window must be verified
    /// on read — a record for a different pairing is a miss, not a hit.
    fn answers(&self, pair: &DivergePair, cfg: &DivergeConfig) -> bool {
        self.arch_a == pair.arch_a.label()
            && self.arch_b == pair.arch_b.label()
            && self.window == cfg.window
            && self.seed == pair.spec.seed
    }
}

/// A whole grid's divergence records plus cache accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergeGridReport {
    /// One record per grid point, in the grid's canonical (F, R, L) order.
    pub records: Vec<DivergenceRecord>,
    /// Points answered from the result store.
    pub hits: usize,
    /// Points computed this run.
    pub misses: usize,
    /// Freshly computed points persisted to the store.
    pub stored: usize,
}

/// Sweeps `grid`, comparing `arch_a` vs `arch_b` at every point, with
/// per-point store caching under [`crate::cache::diverge_key`]. Points
/// run on the same deterministic-order [`parallel_map`] runner as sweeps,
/// so the record vector is byte-identical at any `jobs`.
///
/// # Errors
///
/// Fails on the first point whose comparison fails; store trouble only
/// degrades to recomputation (with a warning), matching sweep behavior.
pub fn diverge_grid(
    grid: &SweepGrid,
    arch_a: Arch,
    arch_b: Arch,
    cfg: &DivergeConfig,
    store: Option<&Store>,
    jobs: usize,
) -> Result<DivergeGridReport, String> {
    let timer = METRICS.spans.diverge_grid.start();
    let points = grid.points();
    let jobs = resolve_jobs(jobs);
    let results = parallel_map(points.len(), jobs, |i| {
        let pair = DivergePair { spec: points[i].spec, arch_a, arch_b };
        let key = store.and_then(|s| match cache::diverge_key(&pair.spec_a(), s.salt()) {
            Ok(key) => Some(key),
            Err(e) => {
                warn!("diverge", "cannot key point {i}: {e}");
                None
            }
        });
        if let (Some(store), Some(key)) = (store, key.as_ref()) {
            if let Ok(Lookup::Hit(bytes)) = store.get(key) {
                match std::str::from_utf8(&bytes)
                    .map_err(|_| ())
                    .and_then(|s| DivergenceRecord::from_json(s).map_err(|_| ()))
                {
                    Ok(record) if record.answers(&pair, cfg) => {
                        return Ok((record, true, false));
                    }
                    _ => {} // foreign pairing or unreadable: recompute
                }
            }
        }
        let outcome = diverge_point(&pair, cfg).map_err(|e| {
            format!(
                "diverge point {i} (F={} R={} L={}): {e}",
                points[i].file_size, points[i].run_length, points[i].latency
            )
        })?;
        let record = DivergenceRecord::from_outcome(&pair, cfg, &outcome);
        let mut stored = false;
        if let (Some(store), Some(key)) = (store, key.as_ref()) {
            match record.to_json().and_then(|json| store.put(key, json.as_bytes())) {
                Ok(()) => stored = true,
                Err(e) => warn!("diverge", "could not store point {i}: {e}"),
            }
        }
        Ok::<(DivergenceRecord, bool, bool), String>((record, false, stored))
    });
    drop(timer);
    let mut records = Vec::with_capacity(points.len());
    let mut hits = 0;
    let mut misses = 0;
    let mut stored = 0;
    for r in results {
        let (record, hit, wrote) = r?;
        if hit {
            hits += 1;
        } else {
            misses += 1;
        }
        if wrote {
            stored += 1;
        }
        records.push(record);
    }
    Ok(DivergeGridReport { records, hits, misses, stored })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::FaultKind;

    fn quick_pair() -> DivergePair {
        DivergePair {
            spec: ExperimentSpec {
                file_size: 64,
                run_length: 8.0,
                fault: FaultKind::Cache { latency: 400 },
                threads: 12,
                work_per_thread: 2_000,
                ..ExperimentSpec::default()
            },
            arch_a: Arch::Fixed,
            arch_b: Arch::Flexible,
        }
    }

    fn quick_cfg() -> DivergeConfig {
        DivergeConfig { window: 2048, context: 4, keep_events: false }
    }

    #[test]
    fn fixed_vs_flexible_diverges_and_records_condense() {
        let pair = quick_pair();
        let cfg = quick_cfg();
        let out = diverge_point(&pair, &cfg).unwrap();
        let d = out.divergence.as_ref().expect("fixed vs flexible must diverge");
        let record = DivergenceRecord::from_outcome(&pair, &cfg, &out);
        assert_eq!(record.divergence_cycle, Some(d.cycle));
        assert_eq!(record.arch_a, "fixed");
        assert_eq!(record.arch_b, "flexible");
        assert!(record.first_kind_a.is_some() || record.first_kind_b.is_some());
        assert!(record.efficiency_a > 0.0 && record.efficiency_b > 0.0);
        // The legs reproduce the straight experiment runs exactly.
        assert_eq!(out.a.stats, pair.spec_a().run().unwrap());
        assert_eq!(out.b.stats, pair.spec_b().run().unwrap());
    }

    #[test]
    fn self_comparison_reports_no_divergence() {
        let pair = DivergePair { arch_b: Arch::Fixed, ..quick_pair() };
        let out = diverge_point(&pair, &quick_cfg()).unwrap();
        assert!(out.divergence.is_none());
        let record = DivergenceRecord::from_outcome(&pair, &quick_cfg(), &out);
        assert_eq!(record.divergence_cycle, None);
        assert_eq!(record.efficiency_delta(), 0.0);
    }

    #[test]
    fn record_round_trips_and_rejects_foreign_versions() {
        let pair = quick_pair();
        let cfg = quick_cfg();
        let out = diverge_point(&pair, &cfg).unwrap();
        let record = DivergenceRecord::from_outcome(&pair, &cfg, &out);
        let json = record.to_json().unwrap();
        assert_eq!(DivergenceRecord::from_json(&json).unwrap(), record);
        let foreign = json.replacen(
            &format!("\"schema_version\":{DIVERGE_SCHEMA_VERSION}"),
            "\"schema_version\":99",
            1,
        );
        match DivergenceRecord::from_json(&foreign) {
            Err(StoreError::SchemaMismatch { what: "divergence record", found: 99, .. }) => {}
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cached_records_only_answer_their_own_pairing() {
        let pair = quick_pair();
        let cfg = quick_cfg();
        let out = diverge_point(&pair, &cfg).unwrap();
        let record = DivergenceRecord::from_outcome(&pair, &cfg, &out);
        assert!(record.answers(&pair, &cfg));
        let other_leg = DivergePair { arch_b: Arch::FlexibleFf1, ..pair };
        assert!(!record.answers(&other_leg, &cfg));
        let other_window = DivergeConfig { window: cfg.window * 2, ..cfg };
        assert!(!record.answers(&pair, &other_window));
    }

    #[test]
    fn grid_is_deterministic_across_jobs_and_warm_reruns_hit() {
        let grid = SweepGrid {
            file_sizes: vec![64],
            run_lengths: vec![8.0],
            latencies: vec![100, 400],
            fault: crate::sweep::FaultFamily::Cache,
            context_size: rr_workload::ContextSizeDist::PAPER_UNIFORM,
            base: ExperimentSpec {
                threads: 10,
                work_per_thread: 1_500,
                ..ExperimentSpec::default()
            },
        };
        let cfg = quick_cfg();
        let serial =
            diverge_grid(&grid, Arch::Fixed, Arch::Flexible, &cfg, None, 1).unwrap();
        let parallel =
            diverge_grid(&grid, Arch::Fixed, Arch::Flexible, &cfg, None, 4).unwrap();
        assert_eq!(serial.records, parallel.records, "order independent of jobs");
        assert_eq!(serial.records.len(), 2);

        let dir = std::env::temp_dir().join(format!("rr-diverge-grid-{}", std::process::id()));
        let store = cache::open_store(&dir).unwrap();
        let cold =
            diverge_grid(&grid, Arch::Fixed, Arch::Flexible, &cfg, Some(&store), 2).unwrap();
        assert_eq!(cold.misses, 2);
        assert_eq!(cold.stored, 2);
        let warm =
            diverge_grid(&grid, Arch::Fixed, Arch::Flexible, &cfg, Some(&store), 2).unwrap();
        assert_eq!(warm.hits, 2);
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.records, cold.records, "warm records byte-identical");
        // A different pairing under the same keys recomputes rather than
        // replaying the wrong comparison.
        let other =
            diverge_grid(&grid, Arch::Fixed, Arch::FlexibleFf1, &cfg, Some(&store), 2).unwrap();
        assert_eq!(other.hits, 0);
        assert_eq!(other.misses, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
