//! Sweep-result caching: salts, point keys, and store plumbing.
//!
//! This module is the bridge between the domain-agnostic [`rr_store`] crate
//! and the experiment harness: it decides *what identifies a result*. A
//! stored point is addressed by a [`Fingerprint`] of the salt plus the
//! spec's canonical JSON, where the salt folds in everything that can
//! change a result without changing its spec:
//!
//! - [`SWEEP_SCHEMA_VERSION`] — the shape of the serialized reports,
//! - [`rr_sim::CODE_VERSION`] — the simulator's behavioral version,
//! - a digest of the cost-model constants ([`SchedCosts`], [`AllocCosts`],
//!   [`SimOptions`] presets) actually used by the experiments.
//!
//! Change any of those and every previously stored record becomes
//! *unreachable* (its key no longer matches any query), so a warm cache can
//! never serve results from different physics. `rr cache gc` reclaims the
//! orphans.

use std::path::PathBuf;

use rr_alloc::AllocCosts;
use rr_runtime::SchedCosts;
use rr_sim::SimOptions;
use rr_store::{sha256, Durability, Fingerprint, Store, StoreError};

use crate::experiments::ExperimentSpec;
use crate::sweep::SWEEP_SCHEMA_VERSION;

/// Default store directory, created next to wherever the sweep runs.
pub const DEFAULT_STORE_DIR: &str = ".rr-store";

/// Environment variable naming the store directory (CLI flags win over it).
pub const STORE_ENV: &str = "RR_STORE";

/// The salt under which this build stores and serves sweep points.
///
/// Human-readable on purpose — `rr cache stats` surfaces it, and a stale
/// record's header names the version that produced it.
pub fn store_salt() -> String {
    format!(
        "sweep-v{SWEEP_SCHEMA_VERSION}.sim-v{}.costs-{}",
        rr_sim::CODE_VERSION,
        costs_digest(),
    )
}

/// Short digest over every cost-model constant the experiments run with.
///
/// The paper's results are a function of these numbers (Figure 4's cycle
/// charges, the allocator search costs, the simulator presets); editing any
/// of them must orphan stored results even if nobody remembers to bump
/// [`rr_sim::CODE_VERSION`].
fn costs_digest() -> String {
    let parts: [(&str, String); 9] = [
        ("sched.cache", json_of(&SchedCosts::cache_experiments())),
        ("sched.sync", json_of(&SchedCosts::sync_experiments())),
        ("alloc.paper_flexible", json_of(&AllocCosts::paper_flexible())),
        ("alloc.hardware_free", json_of(&AllocCosts::hardware_free())),
        ("alloc.ff1", json_of(&AllocCosts::ff1())),
        ("alloc.first_fit", json_of(&AllocCosts::first_fit())),
        ("alloc.lookup_table", json_of(&AllocCosts::lookup_table())),
        ("sim.cache", json_of(&SimOptions::cache_experiments())),
        ("sim.sync", json_of(&SimOptions::sync_experiments())),
    ];
    let mut h = sha256::Sha256::new();
    for (name, json) in &parts {
        h.update(&(name.len() as u64).to_le_bytes());
        h.update(name.as_bytes());
        h.update(&(json.len() as u64).to_le_bytes());
        h.update(json.as_bytes());
    }
    sha256::to_hex(&h.finalize())[..12].to_string()
}

fn json_of<T: serde::Serialize>(value: &T) -> String {
    // The vendored serializer is infallible for plain derived structs; an
    // error here would mean the cost-model types stopped being serializable,
    // which the unit tests catch.
    serde_json::to_string(value).unwrap_or_else(|e| format!("<unserializable: {e}>"))
}

/// The content address of one experiment point under `salt`.
///
/// # Errors
///
/// Propagates serialization failures from the spec's canonical form.
pub fn point_key(spec: &ExperimentSpec, salt: &str) -> Result<Fingerprint, StoreError> {
    Ok(Fingerprint::of_bytes(salt, spec.canonical_json()?.as_bytes()))
}

/// The content address of one experiment point's *trace-metrics summary*
/// under `salt`. Domain-tagged so it can never collide with the same
/// point's sweep result ([`point_key`]) even though both derive from the
/// identical spec and salt.
///
/// # Errors
///
/// Propagates serialization failures from the spec's canonical form.
pub fn trace_key(spec: &ExperimentSpec, salt: &str) -> Result<Fingerprint, StoreError> {
    Ok(Fingerprint::of_domain(salt, "trace", spec.canonical_json()?.as_bytes()))
}

/// The content address of one experiment point's *engine checkpoint*
/// under `salt` — the rolling mid-run snapshot a `--checkpoint-every`
/// sweep writes so an interrupted run can resume. Domain-tagged like
/// [`trace_key`], so a checkpoint can never collide with the same spec's
/// final result or trace summary. The spec's `arch` field is part of its
/// canonical form, so the fixed and flexible legs of one grid point
/// checkpoint under distinct keys.
///
/// # Errors
///
/// Propagates serialization failures from the spec's canonical form.
pub fn snapshot_key(spec: &ExperimentSpec, salt: &str) -> Result<Fingerprint, StoreError> {
    Ok(Fingerprint::of_domain(salt, "snapshot", spec.canonical_json()?.as_bytes()))
}

/// The content address of one grid point's *divergence record* under
/// `salt` — the cached outcome of the fixed-vs-flexible (or any paired)
/// lockstep comparison `rr diverge` runs. Keyed by the **baseline** leg's
/// spec (the comparison's identity is the grid point; the candidate leg is
/// part of the record), and domain-tagged so it can never collide with the
/// same spec's sweep result, trace summary, or checkpoint.
///
/// # Errors
///
/// Propagates serialization failures from the spec's canonical form.
pub fn diverge_key(spec: &ExperimentSpec, salt: &str) -> Result<Fingerprint, StoreError> {
    Ok(Fingerprint::of_domain(salt, "diverge", spec.canonical_json()?.as_bytes()))
}

/// Opens (creating if needed) the result store at `dir` under this build's
/// [`store_salt`].
///
/// The store is opened with [`Durability::Relaxed`]: every record here is
/// a recomputable simulation result whose integrity is checksum-verified
/// on read, so a per-record `fsync` buys nothing but wall clock — it was
/// the single largest cost of a cold sweep, ahead of the simulation
/// itself. Power loss can drop recent records; it cannot corrupt a warm
/// read.
///
/// # Errors
///
/// Fails on I/O errors or a store written by an incompatible layout version.
pub fn open_store(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
    Ok(Store::open(dir, store_salt())?.with_durability(Durability::Relaxed))
}

/// Machine-readable store statistics: the one JSON shape shared by
/// `rr cache stats --json` and the daemon's `GET /health`, so dashboards
/// and scripts parse a single format wherever the numbers come from.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStatsReport {
    /// The store's root directory.
    pub dir: String,
    /// The salt this build reads and writes under (see [`store_salt`]).
    pub salt: String,
    /// Committed records readable under the current salt.
    pub records: u64,
    /// Records stranded under a foreign salt (older simulator or cost
    /// model); `rr cache gc` reclaims them.
    pub stale: u64,
    /// Sum of record payload sizes in bytes.
    pub payload_bytes: u64,
    /// Sum of record file sizes in bytes (headers included).
    pub file_bytes: u64,
    /// Occupied shard directories.
    pub shards: u64,
    /// Files sitting in quarantine.
    pub quarantined: u64,
}

/// Walks `store` and assembles the shared [`CacheStatsReport`].
///
/// # Errors
///
/// Propagates I/O failures from the stats walk.
pub fn stats_report(store: &Store) -> Result<CacheStatsReport, StoreError> {
    let stats = store.stats()?;
    Ok(CacheStatsReport {
        dir: store.root().display().to_string(),
        salt: store.salt().to_string(),
        records: stats.records,
        stale: stats.stale,
        payload_bytes: stats.payload_bytes,
        file_bytes: stats.file_bytes,
        shards: stats.shards,
        quarantined: stats.quarantined,
    })
}

/// Resolves the store directory from CLI args and the environment.
///
/// Precedence: `--no-store` (off) > `--store [dir]` (on, `dir` defaulting to
/// [`DEFAULT_STORE_DIR`]) > `RR_STORE=<dir>` env > off.
pub fn store_dir_from_args(args: &[String]) -> Option<PathBuf> {
    if args.iter().any(|a| a == "--no-store") {
        return None;
    }
    if let Some(i) = args.iter().position(|a| a == "--store") {
        let dir = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => DEFAULT_STORE_DIR.to_string(),
        };
        return Some(PathBuf::from(dir));
    }
    std::env::var(STORE_ENV).ok().filter(|v| !v.is_empty()).map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn salt_names_all_version_axes() {
        let salt = store_salt();
        assert!(salt.contains(&format!("sweep-v{SWEEP_SCHEMA_VERSION}")), "{salt}");
        assert!(salt.contains(&format!("sim-v{}", rr_sim::CODE_VERSION)), "{salt}");
        assert!(salt.contains("costs-"), "{salt}");
        assert_eq!(salt, store_salt(), "salt is deterministic");
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let salt = store_salt();
        let base = ExperimentSpec::default();
        let key = |s: &ExperimentSpec| point_key(s, &salt).unwrap();
        let mut other = base;
        other.seed += 1;
        assert_ne!(key(&base), key(&other), "seed is part of the key");
        let mut other = base;
        other.run_length += 1.0;
        assert_ne!(key(&base), key(&other));
        assert_eq!(key(&base), key(&base), "same spec, same key");
        // A different salt (different code version) relocates every key.
        assert_ne!(key(&base), point_key(&base, "other-salt").unwrap());
    }

    #[test]
    fn trace_keys_never_collide_with_point_keys() {
        let salt = store_salt();
        let spec = ExperimentSpec::default();
        let point = point_key(&spec, &salt).unwrap();
        let trace = trace_key(&spec, &salt).unwrap();
        assert_ne!(point, trace, "same spec, different record kinds");
        assert_eq!(trace, trace_key(&spec, &salt).unwrap(), "deterministic");
        let mut other = spec;
        other.seed += 1;
        assert_ne!(trace, trace_key(&other, &salt).unwrap());
    }

    #[test]
    fn diverge_keys_never_collide_with_other_domains() {
        let salt = store_salt();
        let spec = ExperimentSpec::default();
        let diverge = diverge_key(&spec, &salt).unwrap();
        assert_ne!(diverge, point_key(&spec, &salt).unwrap());
        assert_ne!(diverge, trace_key(&spec, &salt).unwrap());
        assert_ne!(diverge, snapshot_key(&spec, &salt).unwrap());
        assert_eq!(diverge, diverge_key(&spec, &salt).unwrap(), "deterministic");
        let mut other = spec;
        other.file_size *= 2;
        assert_ne!(diverge, diverge_key(&other, &salt).unwrap());
    }

    #[test]
    fn store_dir_precedence() {
        assert_eq!(store_dir_from_args(&args(&["--no-store", "--store", "d"])), None);
        assert_eq!(
            store_dir_from_args(&args(&["--store", "mydir"])),
            Some(PathBuf::from("mydir"))
        );
        assert_eq!(
            store_dir_from_args(&args(&["--store", "--json"])),
            Some(PathBuf::from(DEFAULT_STORE_DIR)),
            "--store with no value falls back to the default dir"
        );
        assert_eq!(
            store_dir_from_args(&args(&["--store"])),
            Some(PathBuf::from(DEFAULT_STORE_DIR))
        );
    }
}
