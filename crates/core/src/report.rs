//! Text rendering of figure sweeps, in the spirit of the paper's plots.

use crate::figures::FigurePoint;
use crate::sweep::SweepRun;
use crate::trace::{TracedArchRun, TracedPoint};

/// Renders one figure panel as an aligned text table: one row block per run
/// length, columns per latency, with fixed/flexible efficiencies and their
/// ratio.
pub fn format_panel(title: &str, points: &[FigurePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let mut run_lengths: Vec<f64> = points.iter().map(|p| p.run_length).collect();
    run_lengths.dedup();
    for r in run_lengths {
        let row: Vec<&FigurePoint> =
            points.iter().filter(|p| p.run_length == r).collect();
        if row.is_empty() {
            continue;
        }
        out.push_str(&format!("  R = {r:>5}\n"));
        out.push_str("    L        ");
        for p in &row {
            out.push_str(&format!("{:>9}", p.comparison.latency));
        }
        out.push_str("\n    fixed    ");
        for p in &row {
            out.push_str(&format!("{:>9.3}", p.comparison.fixed_efficiency));
        }
        out.push_str("\n    flexible ");
        for p in &row {
            out.push_str(&format!("{:>9.3}", p.comparison.flexible_efficiency));
        }
        out.push_str("\n    ratio    ");
        for p in &row {
            out.push_str(&format!("{:>9.2}", p.comparison.speedup()));
        }
        out.push('\n');
    }
    out
}

/// One-paragraph execution summary of a sweep: point count, worker count,
/// wall-clock, the serial-equivalent cost the pool amortized, the slowest
/// point (the floor no worker count can beat), and — when a result store is
/// attached — the cache traffic of this execution.
pub fn format_sweep_summary(run: &SweepRun) -> String {
    let report = &run.report;
    let wall_s = run.total_wall_nanos as f64 / 1e9;
    let serial_s = report.points_wall_nanos() as f64 / 1e9;
    let mut out = format!(
        "sweep: {} points on {} worker(s), seed {}: {wall_s:.2}s wall (serial-equivalent {serial_s:.2}s)",
        report.points.len(),
        run.jobs,
        report.seed,
    );
    if let Some(slow) = report.slowest_point() {
        out.push_str(&format!(
            "; slowest point F={} R={} L={} at {:.2}s",
            slow.file_size,
            slow.run_length,
            slow.latency,
            slow.wall_nanos as f64 / 1e9,
        ));
    }
    if run.cache.enabled {
        out.push_str(&format!(
            "; store {}/{} cached ({} computed, {} stored, {} quarantined)",
            run.cache.hits,
            report.points.len(),
            run.cache.misses,
            run.cache.stored,
            run.cache.quarantined,
        ));
    }
    out
}

/// Renders one traced point as a side-by-side fixed/flexible summary with
/// an efficiency-over-time sparkline per architecture — the `rr trace`
/// terminal view of what the Perfetto export shows graphically.
pub fn format_trace_point(point: &TracedPoint) -> String {
    let spec = &point.spec;
    let mut out = format!(
        "## trace: F={} R={} L={} seed={}\n",
        spec.file_size,
        spec.run_length,
        spec.fault.mean_latency(),
        spec.seed,
    );
    let row = |label: &str, fixed: String, flexible: String| {
        format!("  {label:<22}{fixed:>14}{flexible:>14}\n")
    };
    out.push_str(&row("", "fixed".into(), "flexible".into()));
    let f = &point.fixed;
    let x = &point.flexible;
    out.push_str(&row(
        "efficiency",
        format!("{:.3}", f.stats.efficiency()),
        format!("{:.3}", x.stats.efficiency()),
    ));
    out.push_str(&row(
        "avg resident",
        format!("{:.2}", f.stats.avg_resident),
        format!("{:.2}", x.stats.avg_resident),
    ));
    out.push_str(&row(
        "total cycles",
        f.stats.total_cycles.to_string(),
        x.stats.total_cycles.to_string(),
    ));
    out.push_str(&row("faults", f.stats.faults.to_string(), x.stats.faults.to_string()));
    out.push_str(&row(
        "loads / unloads",
        format!("{} / {}", f.stats.loads, f.stats.unloads),
        format!("{} / {}", x.stats.loads, x.stats.unloads),
    ));
    out.push_str(&row(
        "events",
        f.events.len().to_string(),
        x.events.len().to_string(),
    ));
    out.push_str(&row(
        "run length mean",
        format!("{:.1}", f.metrics.run_lengths.mean()),
        format!("{:.1}", x.metrics.run_lengths.mean()),
    ));
    out.push_str(&row(
        "fault latency mean",
        format!("{:.1}", f.metrics.fault_latencies.mean()),
        format!("{:.1}", x.metrics.fault_latencies.mean()),
    ));
    out.push_str(&format!(
        "  windows: {} x {} cycles\n",
        f.metrics.windows.len(),
        f.metrics.window,
    ));
    out.push_str(&format!("  fixed    |{}|\n", efficiency_sparkline(f)));
    out.push_str(&format!("  flexible |{}|\n", efficiency_sparkline(x)));
    out
}

/// One character per window, darker = higher in-window efficiency.
fn efficiency_sparkline(run: &TracedArchRun) -> String {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
    run.metrics
        .windows
        .iter()
        .map(|w| {
            let eff = w.efficiency().clamp(0.0, 1.0);
            RAMP[((eff * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
        })
        .collect()
}

/// Renders the points as a machine-readable JSON lines block (one point per
/// line), for EXPERIMENTS.md and downstream plotting.
pub fn format_jsonl(points: &[FigurePoint]) -> String {
    points
        .iter()
        .map(|p| serde_json::to_string(p).expect("figure points serialize"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ComparisonPoint;

    fn point(r: f64, l: f64, fixed: f64, flex: f64) -> FigurePoint {
        FigurePoint {
            run_length: r,
            comparison: ComparisonPoint {
                file_size: 128,
                run_length: r,
                latency: l,
                fixed_efficiency: fixed,
                flexible_efficiency: flex,
                fixed_avg_resident: 4.0,
                flexible_avg_resident: 9.0,
            },
        }
    }

    #[test]
    fn panel_contains_all_rows() {
        let pts =
            vec![point(8.0, 50.0, 0.2, 0.4), point(8.0, 100.0, 0.1, 0.3), point(32.0, 50.0, 0.5, 0.6)];
        let s = format_panel("Figure 5(b): F = 128", &pts);
        assert!(s.contains("Figure 5(b)"));
        assert!(s.contains("R =     8"));
        assert!(s.contains("R =    32"));
        assert!(s.contains("fixed"));
        assert!(s.contains("flexible"));
        assert!(s.contains("2.00"), "ratio row present:\n{s}");
    }

    #[test]
    fn jsonl_round_trips() {
        let pts = vec![point(8.0, 50.0, 0.2, 0.4)];
        let s = format_jsonl(&pts);
        let back: FigurePoint = serde_json::from_str(&s).unwrap();
        assert_eq!(back, pts[0]);
    }

    #[test]
    fn trace_point_report_shows_both_architectures() {
        use crate::experiments::{ExperimentSpec, FaultKind};

        let spec = ExperimentSpec {
            file_size: 64,
            run_length: 16.0,
            fault: FaultKind::Cache { latency: 100 },
            threads: 10,
            work_per_thread: 1_500,
            ..ExperimentSpec::default()
        };
        let point = TracedPoint::run(&spec).unwrap();
        let s = format_trace_point(&point);
        assert!(s.contains("F=64 R=16 L=100"), "{s}");
        assert!(s.contains("fixed") && s.contains("flexible"), "{s}");
        assert!(s.contains("efficiency"), "{s}");
        assert!(s.contains("windows:"), "{s}");
        let sparklines: Vec<&str> =
            s.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(sparklines.len(), 2, "one sparkline per architecture:\n{s}");
    }

    #[test]
    fn sweep_summary_names_the_bottleneck() {
        use crate::sweep::{CacheSummary, PointReport, SweepReport, SWEEP_SCHEMA_VERSION};
        use rr_sim::SimStats;

        let slow = PointReport {
            schema_version: SWEEP_SCHEMA_VERSION,
            index: 0,
            file_size: 64,
            run_length: 8.0,
            latency: 800,
            seed: 7,
            figure: point(8.0, 800.0, 0.2, 0.4),
            fixed: SimStats::default(),
            flexible: SimStats::default(),
            fixed_wall_nanos: 1_000_000,
            flexible_wall_nanos: 2_000_000,
            wall_nanos: 3_500_000_000,
        };
        let mut run = SweepRun {
            report: SweepReport {
                schema_version: SWEEP_SCHEMA_VERSION,
                seed: 7,
                points: vec![slow],
            },
            jobs: 8,
            total_wall_nanos: 4_000_000_000,
            cache: CacheSummary::default(),
            metrics: rr_telemetry::METRICS.snapshot(),
        };
        let s = format_sweep_summary(&run);
        assert!(s.contains("1 points on 8 worker(s)"), "{s}");
        assert!(s.contains("seed 7"), "{s}");
        assert!(s.contains("slowest point F=64 R=8 L=800"), "{s}");
        assert!(!s.contains("store"), "no cache segment without a store: {s}");

        run.cache =
            CacheSummary { enabled: true, hits: 1, misses: 0, stored: 0, quarantined: 0 };
        let s = format_sweep_summary(&run);
        assert!(s.contains("store 1/1 cached"), "{s}");
    }
}
