//! Text rendering of figure sweeps, in the spirit of the paper's plots.

use crate::figures::FigurePoint;
use crate::sweep::SweepRun;

/// Renders one figure panel as an aligned text table: one row block per run
/// length, columns per latency, with fixed/flexible efficiencies and their
/// ratio.
pub fn format_panel(title: &str, points: &[FigurePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let mut run_lengths: Vec<f64> = points.iter().map(|p| p.run_length).collect();
    run_lengths.dedup();
    for r in run_lengths {
        let row: Vec<&FigurePoint> =
            points.iter().filter(|p| p.run_length == r).collect();
        if row.is_empty() {
            continue;
        }
        out.push_str(&format!("  R = {r:>5}\n"));
        out.push_str("    L        ");
        for p in &row {
            out.push_str(&format!("{:>9}", p.comparison.latency));
        }
        out.push_str("\n    fixed    ");
        for p in &row {
            out.push_str(&format!("{:>9.3}", p.comparison.fixed_efficiency));
        }
        out.push_str("\n    flexible ");
        for p in &row {
            out.push_str(&format!("{:>9.3}", p.comparison.flexible_efficiency));
        }
        out.push_str("\n    ratio    ");
        for p in &row {
            out.push_str(&format!("{:>9.2}", p.comparison.speedup()));
        }
        out.push('\n');
    }
    out
}

/// One-paragraph execution summary of a sweep: point count, worker count,
/// wall-clock, the serial-equivalent cost the pool amortized, the slowest
/// point (the floor no worker count can beat), and — when a result store is
/// attached — the cache traffic of this execution.
pub fn format_sweep_summary(run: &SweepRun) -> String {
    let report = &run.report;
    let wall_s = run.total_wall_nanos as f64 / 1e9;
    let serial_s = report.points_wall_nanos() as f64 / 1e9;
    let mut out = format!(
        "sweep: {} points on {} worker(s), seed {}: {wall_s:.2}s wall (serial-equivalent {serial_s:.2}s)",
        report.points.len(),
        run.jobs,
        report.seed,
    );
    if let Some(slow) = report.slowest_point() {
        out.push_str(&format!(
            "; slowest point F={} R={} L={} at {:.2}s",
            slow.file_size,
            slow.run_length,
            slow.latency,
            slow.wall_nanos as f64 / 1e9,
        ));
    }
    if run.cache.enabled {
        out.push_str(&format!(
            "; store {}/{} cached ({} computed, {} stored, {} quarantined)",
            run.cache.hits,
            report.points.len(),
            run.cache.misses,
            run.cache.stored,
            run.cache.quarantined,
        ));
    }
    out
}

/// Renders the points as a machine-readable JSON lines block (one point per
/// line), for EXPERIMENTS.md and downstream plotting.
pub fn format_jsonl(points: &[FigurePoint]) -> String {
    points
        .iter()
        .map(|p| serde_json::to_string(p).expect("figure points serialize"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ComparisonPoint;

    fn point(r: f64, l: f64, fixed: f64, flex: f64) -> FigurePoint {
        FigurePoint {
            run_length: r,
            comparison: ComparisonPoint {
                file_size: 128,
                run_length: r,
                latency: l,
                fixed_efficiency: fixed,
                flexible_efficiency: flex,
                fixed_avg_resident: 4.0,
                flexible_avg_resident: 9.0,
            },
        }
    }

    #[test]
    fn panel_contains_all_rows() {
        let pts =
            vec![point(8.0, 50.0, 0.2, 0.4), point(8.0, 100.0, 0.1, 0.3), point(32.0, 50.0, 0.5, 0.6)];
        let s = format_panel("Figure 5(b): F = 128", &pts);
        assert!(s.contains("Figure 5(b)"));
        assert!(s.contains("R =     8"));
        assert!(s.contains("R =    32"));
        assert!(s.contains("fixed"));
        assert!(s.contains("flexible"));
        assert!(s.contains("2.00"), "ratio row present:\n{s}");
    }

    #[test]
    fn jsonl_round_trips() {
        let pts = vec![point(8.0, 50.0, 0.2, 0.4)];
        let s = format_jsonl(&pts);
        let back: FigurePoint = serde_json::from_str(&s).unwrap();
        assert_eq!(back, pts[0]);
    }

    #[test]
    fn sweep_summary_names_the_bottleneck() {
        use crate::sweep::{CacheSummary, PointReport, SweepReport, SWEEP_SCHEMA_VERSION};
        use rr_sim::SimStats;

        let slow = PointReport {
            schema_version: SWEEP_SCHEMA_VERSION,
            index: 0,
            file_size: 64,
            run_length: 8.0,
            latency: 800,
            seed: 7,
            figure: point(8.0, 800.0, 0.2, 0.4),
            fixed: SimStats::default(),
            flexible: SimStats::default(),
            fixed_wall_nanos: 1_000_000,
            flexible_wall_nanos: 2_000_000,
            wall_nanos: 3_500_000_000,
        };
        let mut run = SweepRun {
            report: SweepReport {
                schema_version: SWEEP_SCHEMA_VERSION,
                seed: 7,
                points: vec![slow],
            },
            jobs: 8,
            total_wall_nanos: 4_000_000_000,
            cache: CacheSummary::default(),
        };
        let s = format_sweep_summary(&run);
        assert!(s.contains("1 points on 8 worker(s)"), "{s}");
        assert!(s.contains("seed 7"), "{s}");
        assert!(s.contains("slowest point F=64 R=8 L=800"), "{s}");
        assert!(!s.contains("store"), "no cache segment without a store: {s}");

        run.cache =
            CacheSummary { enabled: true, hits: 1, misses: 0, stored: 0, quarantined: 0 };
        let s = format_sweep_summary(&run);
        assert!(s.contains("store 1/1 cached"), "{s}");
    }
}
