//! Parameter sweeps regenerating the paper's Figures 5 and 6.
//!
//! Each figure is a 3-panel family: one panel per register file size
//! `F ∈ {64, 128, 256}`, curves for three run lengths, efficiency plotted
//! against fault latency, solid = fixed hardware contexts, dotted = register
//! relocation. The paper's exact latency grids are not printed; the grids
//! here span the same qualitative range (from latencies short enough to
//! saturate every configuration up to latencies deep in the linear regime).
//!
//! These entry points run serially (one worker) through the
//! [`crate::sweep`] runner; callers wanting parallelism and per-run
//! observability use [`crate::sweep::SweepRunner`] directly. Either way the
//! figure points are bit-identical.

use serde::{Deserialize, Serialize};

use crate::experiments::ComparisonPoint;
use crate::sweep::{SweepGrid, SweepRunner};

/// Run lengths of Figure 5 (cache faults): circles, squares, triangles.
pub const FIG5_RUN_LENGTHS: [f64; 3] = [8.0, 32.0, 128.0];
/// Latency grid for Figure 5.
pub const FIG5_LATENCIES: [u64; 6] = [20, 50, 100, 200, 400, 800];
/// Run lengths of Figure 6 (synchronization faults).
pub const FIG6_RUN_LENGTHS: [f64; 3] = [32.0, 128.0, 512.0];
/// Latency grid for Figure 6: producer-consumer synchronization waits of the
/// paper's era (tens to hundreds of cycles). In this range the allocation
/// overhead crossover appears only in the F = 64 panel, matching the paper's
/// "only notable exception"; the extended grid
/// [`FIG6_EXTENDED_LATENCIES`] (used by the ablation binary) shows the same
/// crossover reaching larger files at latencies beyond the paper's range.
pub const FIG6_LATENCIES: [u64; 6] = [25, 50, 100, 200, 350, 500];
/// Extended synchronization-latency grid for the section 3.3 ablation.
pub const FIG6_EXTENDED_LATENCIES: [u64; 6] = [100, 250, 500, 1000, 2500, 5000];
/// Register file sizes of both figures' panels.
pub const FILE_SIZES: [u32; 3] = [64, 128, 256];

/// One plotted point of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Run length `R` of the curve this point belongs to.
    pub run_length: f64,
    /// The paired fixed/flexible measurement.
    pub comparison: ComparisonPoint,
}

/// Sweeps one panel of Figure 5 (cache faults) for register file size
/// `file_size`.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn figure5_sweep(file_size: u32, seed: u64) -> Result<Vec<FigurePoint>, String> {
    run_serial(&SweepGrid::figure5_panel(file_size, seed))
}

/// Sweeps one panel of Figure 6 (synchronization faults) for register file
/// size `file_size`.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn figure6_sweep(file_size: u32, seed: u64) -> Result<Vec<FigurePoint>, String> {
    run_serial(&SweepGrid::figure6_panel(file_size, seed))
}

/// Sweeps a panel with homogeneous context sizes (the section 3.4
/// experiments, `C` = 8 or 16).
///
/// # Errors
///
/// Propagates experiment failures.
pub fn homogeneous_sweep(
    file_size: u32,
    context_size: u32,
    seed: u64,
) -> Result<Vec<FigurePoint>, String> {
    run_serial(&SweepGrid::homogeneous(file_size, context_size, seed))
}

fn run_serial(grid: &SweepGrid) -> Result<Vec<FigurePoint>, String> {
    Ok(SweepRunner::new(1).with_progress(false).run(grid)?.report.figure_points())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature figure-5 panel (few points, small work) exercising the
    /// full sweep path; the real grids run in the bench binaries.
    #[test]
    fn mini_sweep_has_paper_shape() {
        let mut grid = SweepGrid::figure5_panel(128, 7);
        grid.run_lengths = vec![8.0, 128.0];
        grid.latencies = vec![50, 400];
        let points = run_serial(&grid).unwrap();
        assert_eq!(points.len(), 4);
        // Flexible wins or ties everywhere on this grid.
        for p in &points {
            assert!(
                p.comparison.speedup() > 0.95,
                "flexible should not lose badly: {p:?}"
            );
        }
        // Longer latency at short run length widens the flexible advantage.
        let short_run_short_lat = &points[0];
        let short_run_long_lat = &points[1];
        assert!(
            short_run_long_lat.comparison.speedup()
                >= short_run_short_lat.comparison.speedup() * 0.9
        );
    }

    #[test]
    fn grids_match_paper_families() {
        assert_eq!(FIG5_RUN_LENGTHS, [8.0, 32.0, 128.0]);
        assert_eq!(FIG6_RUN_LENGTHS, [32.0, 128.0, 512.0]);
        assert_eq!(FILE_SIZES, [64, 128, 256]);
    }
}
