//! The perf-regression harness behind `rr bench`.
//!
//! A bench run executes a *pinned suite* of representative workloads —
//! cold and warm figure sweeps, one fully traced point, a store integrity
//! pass — several times, and writes a schema-versioned `BENCH_<seq>.json`
//! report carrying two kinds of numbers:
//!
//! * **Cycle-exact invariants** — simulated-cycle totals, point counts,
//!   cache-hit counts, event counts. These are pure functions of the seed
//!   and must be *identical* across iterations, machines, and commits;
//!   [`check`] compares them exactly, so an unintended behavioral change
//!   to the simulator fails the bench even when it is faster.
//! * **Wall-clock medians** — host nanoseconds per case (median and min
//!   across iterations). [`check`] only fails these in the *regression*
//!   direction, and only beyond a configurable tolerance, because wall
//!   clock is noisy where cycles are not.
//!
//! Reports are sequence files: `rr bench` writes `BENCH_<n+1>.json` next
//! to the highest committed `BENCH_<n>.json`, so the repository
//! accumulates a perf trajectory, and `rr bench --check` compares a fresh
//! run against the latest baseline (or an explicit `--baseline`), exiting
//! nonzero on regression.

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::cache;
use crate::experiments::{Arch, ExperimentSpec};
use crate::sweep::{SweepGrid, SweepRun, SweepRunner};
use crate::trace::TracedPoint;
use rr_telemetry::info;

/// Version of the serialized [`BenchReport`]. Bump on any field addition,
/// removal, or meaning change; [`BenchReport::from_json`] refuses other
/// versions so `--check` never compares across schemas.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Prefix of on-disk report files: `BENCH_<seq>.json`.
const BENCH_PREFIX: &str = "BENCH_";

/// Which pinned workload set a bench run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Panel-sized sweeps with shrunk workloads — seconds, for CI smoke.
    Quick,
    /// The full figure grids at paper scale — minutes, for real baselines.
    Full,
}

impl Suite {
    /// The suite's serialized name.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Quick => "quick",
            Suite::Full => "full",
        }
    }

    /// Parses a serialized suite name.
    pub fn parse(s: &str) -> Option<Suite> {
        match s {
            "quick" => Some(Suite::Quick),
            "full" => Some(Suite::Full),
            _ => None,
        }
    }

    /// Default iteration count: enough repeats for a stable median without
    /// making `--quick` slow.
    pub fn default_iterations(&self) -> usize {
        match self {
            Suite::Quick => 3,
            Suite::Full => 5,
        }
    }
}

/// How to run the suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Workload set.
    pub suite: Suite,
    /// Repeats per case (median/min are taken across these).
    pub iterations: usize,
    /// Workload seed every case derives from.
    pub seed: u64,
    /// Sweep worker threads. Defaults to 1 so wall-clock numbers measure
    /// the engine, not the host's momentary scheduling luck.
    pub jobs: usize,
}

impl BenchConfig {
    /// The default configuration for `suite`.
    pub fn new(suite: Suite) -> Self {
        BenchConfig { suite, iterations: suite.default_iterations(), seed: 1993, jobs: 1 }
    }
}

/// One named cycle-exact quantity a case asserts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invariant {
    /// What the number counts.
    pub name: String,
    /// The count. Identical across iterations or the bench run fails.
    pub value: u64,
}

/// One case's result: its wall-clock distribution and its invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCaseReport {
    /// Case name, stable across commits (e.g. `fig5_cold`).
    pub name: String,
    /// Iterations measured.
    pub iterations: usize,
    /// Median wall nanoseconds across iterations (for even counts, the
    /// two middle iterations averaged, rounded down).
    pub wall_nanos_median: u64,
    /// Fastest iteration — the least-noisy single number.
    pub wall_nanos_min: u64,
    /// Cycle-exact quantities, compared exactly by [`check`].
    pub invariants: Vec<Invariant>,
}

/// A full bench run, as serialized to `BENCH_<seq>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA_VERSION`] this report was produced under.
    pub schema_version: u32,
    /// Suite name (`quick` or `full`).
    pub suite: String,
    /// Workload seed the cases ran with.
    pub seed: u64,
    /// Sweep worker threads the cases ran with.
    pub jobs: usize,
    /// Per-case results, in fixed suite order.
    pub cases: Vec<BenchCaseReport>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json_pretty(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("serializing bench report: {e}"))
    }

    /// Parses a serialized report, refusing foreign schema versions.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a [`BENCH_SCHEMA_VERSION`] mismatch.
    pub fn from_json(json: &str) -> Result<BenchReport, String> {
        let report: BenchReport =
            serde_json::from_str(json).map_err(|e| format!("parsing bench report: {e}"))?;
        if report.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench report schema v{} (this build speaks v{BENCH_SCHEMA_VERSION})",
                report.schema_version
            ));
        }
        Ok(report)
    }

    /// The named case, if present.
    pub fn case(&self, name: &str) -> Option<&BenchCaseReport> {
        self.cases.iter().find(|c| c.name == name)
    }
}

/// One iteration's observation of one case.
struct CaseSample {
    wall_nanos: u64,
    invariants: Vec<Invariant>,
}

/// The pinned grids, the traced point, and the long-horizon point for
/// `suite`.
///
/// The long-horizon case runs the traced point's spec for 10× the suite's
/// per-thread work on both architectures. The sweep cases retire threads
/// quickly; a tenfold horizon keeps the engine in its steady state long
/// enough that inner-loop costs (wakeup queue churn, per-probe scheduling
/// work) dominate the measurement instead of setup and teardown.
fn suite_grids(config: &BenchConfig) -> (SweepGrid, SweepGrid, ExperimentSpec, ExperimentSpec) {
    let (fig5, fig6, traced) = match config.suite {
        Suite::Quick => {
            let shrink = |mut grid: SweepGrid| {
                grid.base =
                    ExperimentSpec { threads: 8, work_per_thread: 2_000, ..grid.base };
                grid
            };
            let fig5 = shrink(SweepGrid::figure5_panel(64, config.seed));
            let fig6 = shrink(SweepGrid::figure6_panel(64, config.seed));
            let traced = fig5
                .point_at(64, 8.0, 100)
                .expect("64,8,100 is on the Figure 5 grid")
                .spec;
            (fig5, fig6, traced)
        }
        Suite::Full => {
            let fig5 = SweepGrid::figure5(config.seed);
            let fig6 = SweepGrid::figure6(config.seed);
            let traced = fig5
                .point_at(64, 8.0, 400)
                .expect("64,8,400 is on the Figure 5 grid")
                .spec;
            (fig5, fig6, traced)
        }
    };
    let long = ExperimentSpec { work_per_thread: traced.work_per_thread * 10, ..traced };
    (fig5, fig6, traced, long)
}

/// The invariants of one sweep execution.
fn sweep_invariants(run: &SweepRun) -> Vec<Invariant> {
    let fixed_cycles: u64 = run.report.points.iter().map(|p| p.fixed.total_cycles).sum();
    let flexible_cycles: u64 =
        run.report.points.iter().map(|p| p.flexible.total_cycles).sum();
    vec![
        Invariant { name: "points".into(), value: run.report.points.len() as u64 },
        Invariant { name: "cache_hits".into(), value: run.cache.hits as u64 },
        Invariant { name: "fixed_cycles".into(), value: fixed_cycles },
        Invariant { name: "flexible_cycles".into(), value: flexible_cycles },
    ]
}

/// Runs the whole suite once against a fresh store at `store_dir`,
/// returning each case's sample in suite order.
fn run_suite_once(
    config: &BenchConfig,
    store_dir: &Path,
) -> Result<Vec<(String, CaseSample)>, String> {
    let (fig5, fig6, traced_spec, long_spec) = suite_grids(config);
    let mut samples = Vec::new();
    let mut sweep_case = |name: &str, grid: &SweepGrid| -> Result<(), String> {
        let store = cache::open_store(store_dir).map_err(|e| e.to_string())?;
        let runner = SweepRunner::new(config.jobs).with_store(Some(store));
        let started = Instant::now();
        let run = runner.run(grid).map_err(|e| format!("{name}: {e}"))?;
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        samples.push((
            name.to_string(),
            CaseSample { wall_nanos: wall, invariants: sweep_invariants(&run) },
        ));
        Ok(())
    };
    // Cold then warm against the same store: the cold pass populates it, so
    // the warm pass's `cache_hits` invariant proves the store served every
    // point.
    sweep_case("fig5_cold", &fig5)?;
    sweep_case("fig5_warm", &fig5)?;
    sweep_case("fig6_cold", &fig6)?;
    sweep_case("fig6_warm", &fig6)?;

    {
        let store = cache::open_store(store_dir).map_err(|e| e.to_string())?;
        let started = Instant::now();
        let report = store.verify().map_err(|e| format!("store_verify: {e}"))?;
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if !report.quarantined.is_empty() {
            return Err(format!(
                "store_verify: {} freshly written record(s) failed verification",
                report.quarantined.len()
            ));
        }
        samples.push((
            "store_verify".to_string(),
            CaseSample {
                wall_nanos: wall,
                invariants: vec![Invariant { name: "records_ok".into(), value: report.ok }],
            },
        ));
    }

    {
        let started = Instant::now();
        let traced = TracedPoint::run(&traced_spec).map_err(|e| format!("traced_point: {e}"))?;
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        samples.push((
            "traced_point".to_string(),
            CaseSample {
                wall_nanos: wall,
                invariants: vec![
                    Invariant {
                        name: "fixed_cycles".into(),
                        value: traced.fixed.stats.total_cycles,
                    },
                    Invariant {
                        name: "flexible_cycles".into(),
                        value: traced.flexible.stats.total_cycles,
                    },
                    Invariant {
                        name: "fixed_events".into(),
                        value: traced.fixed.events.len() as u64,
                    },
                    Invariant {
                        name: "flexible_events".into(),
                        value: traced.flexible.events.len() as u64,
                    },
                ],
            },
        ));
    }

    {
        // Long horizon: the traced point's spec at 10× work, untraced, on
        // both architectures. Steady-state engine throughput with no store
        // or event-recording overhead in the measurement.
        let started = Instant::now();
        let fixed = long_spec
            .with_arch(Arch::Fixed)
            .run()
            .map_err(|e| format!("long_horizon: {e}"))?;
        let flexible = long_spec
            .with_arch(Arch::Flexible)
            .run()
            .map_err(|e| format!("long_horizon: {e}"))?;
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        samples.push((
            "long_horizon".to_string(),
            CaseSample {
                wall_nanos: wall,
                invariants: vec![
                    Invariant { name: "fixed_cycles".into(), value: fixed.total_cycles },
                    Invariant { name: "flexible_cycles".into(), value: flexible.total_cycles },
                ],
            },
        ));
    }
    Ok(samples)
}

/// Median of a sorted slice: the middle element for odd counts, the mean
/// of the two middle elements (rounded down) for even counts. The old
/// lower-middle shortcut biased even-count medians fast — with 4
/// iterations a single lucky run pulled the reported median below the
/// typical run, hiding regressions and inflating wins.
fn median(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    let hi = sorted[n / 2];
    if n % 2 == 1 {
        hi
    } else {
        let lo = sorted[n / 2 - 1];
        lo + (hi - lo) / 2
    }
}

/// Runs the configured suite `config.iterations` times and aggregates the
/// samples into a [`BenchReport`].
///
/// Every iteration gets a *fresh* store directory (under the system temp
/// dir, removed afterwards), so cold cases are genuinely cold and warm
/// cases hit every point. Invariants are cross-checked between iterations:
/// a simulator that produces different cycles on repeat runs is broken, and
/// the bench says so instead of averaging it away.
///
/// # Errors
///
/// Case failures, store I/O failures, and cross-iteration invariant
/// divergence.
pub fn run(config: &BenchConfig) -> Result<BenchReport, String> {
    if config.iterations == 0 {
        return Err("bench needs at least one iteration".to_string());
    }
    let mut walls: Vec<(String, Vec<u64>)> = Vec::new();
    let mut invariants: Vec<Vec<Invariant>> = Vec::new();
    for iter in 0..config.iterations {
        let store_dir = std::env::temp_dir()
            .join(format!("rr-bench-{}-{iter}", std::process::id()));
        let samples = run_suite_once(config, &store_dir);
        let _ = std::fs::remove_dir_all(&store_dir);
        let samples = samples?;
        if iter == 0 {
            for (name, sample) in samples {
                walls.push((name, vec![sample.wall_nanos]));
                invariants.push(sample.invariants);
            }
        } else {
            for (i, (name, sample)) in samples.into_iter().enumerate() {
                debug_assert_eq!(walls[i].0, name, "suite order is fixed");
                walls[i].1.push(sample.wall_nanos);
                if invariants[i] != sample.invariants {
                    return Err(format!(
                        "case `{name}`: iteration {iter} produced different invariants than \
                         iteration 0 ({:?} vs {:?}) — the suite is not deterministic",
                        sample.invariants, invariants[i]
                    ));
                }
            }
        }
        info!("bench", "iteration {}/{} done", iter + 1, config.iterations);
    }
    let cases = walls
        .into_iter()
        .zip(invariants)
        .map(|((name, mut wall), invariants)| {
            wall.sort_unstable();
            BenchCaseReport {
                name,
                iterations: config.iterations,
                wall_nanos_median: median(&wall),
                wall_nanos_min: wall[0],
                invariants,
            }
        })
        .collect();
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        suite: config.suite.name().to_string(),
        seed: config.seed,
        jobs: config.jobs,
        cases,
    })
}

/// Below this absolute delta a median wall-clock difference is treated as
/// host noise, whatever the relative tolerance says. The quick suite's
/// small cases (store verify, warm sweeps) finish in a millisecond or
/// two, where one page-cache stall or fsync hiccup is a multi-x relative
/// "regression"; the cases a real regression would show up in run tens of
/// milliseconds and clear this floor easily.
pub const WALL_NOISE_FLOOR_NANOS: u64 = 5_000_000;

/// Compares a fresh run against a baseline: suites and case sets must
/// match, invariants must match *exactly*, and each case's median wall
/// clock may not regress beyond `tolerance` (e.g. `0.1` = 10% slower
/// fails; any speedup passes). A regression must also exceed
/// [`WALL_NOISE_FLOOR_NANOS`] in absolute terms, so sub-millisecond cases
/// cannot flake on scheduler or filesystem noise.
///
/// # Errors
///
/// One message naming every violation, suitable for the CLI to print and
/// exit nonzero on.
pub fn check(new: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Result<(), String> {
    let mut violations = Vec::new();
    if new.suite != baseline.suite {
        violations.push(format!(
            "suite mismatch: ran `{}`, baseline is `{}`",
            new.suite, baseline.suite
        ));
    }
    if new.seed != baseline.seed {
        violations.push(format!(
            "seed mismatch: ran {}, baseline used {}",
            new.seed, baseline.seed
        ));
    }
    for base_case in &baseline.cases {
        let Some(new_case) = new.case(&base_case.name) else {
            violations.push(format!("case `{}` missing from this run", base_case.name));
            continue;
        };
        if new_case.invariants != base_case.invariants {
            violations.push(format!(
                "case `{}`: cycle-exact invariants changed ({:?} vs baseline {:?})",
                base_case.name, new_case.invariants, base_case.invariants
            ));
        }
        let ceiling = ((base_case.wall_nanos_median as f64) * (1.0 + tolerance))
            .max((base_case.wall_nanos_median + WALL_NOISE_FLOOR_NANOS) as f64);
        if (new_case.wall_nanos_median as f64) > ceiling {
            violations.push(format!(
                "case `{}`: wall regression {:.1}ms -> {:.1}ms (median, tolerance {:.0}%)",
                base_case.name,
                base_case.wall_nanos_median as f64 / 1e6,
                new_case.wall_nanos_median as f64 / 1e6,
                tolerance * 100.0
            ));
        }
    }
    for new_case in &new.cases {
        if baseline.case(&new_case.name).is_none() {
            violations.push(format!(
                "case `{}` is new (not in the baseline); commit a fresh baseline",
                new_case.name
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("bench check failed:\n  {}", violations.join("\n  ")))
    }
}

/// The sequence number encoded in a `BENCH_<seq>.json` file name.
fn bench_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix(BENCH_PREFIX)?.strip_suffix(".json")?.parse().ok()
}

/// Every `BENCH_<seq>.json` in `dir`, sorted by sequence number.
fn bench_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            bench_seq(&path).map(|seq| (seq, path))
        })
        .collect();
    found.sort();
    found
}

/// The path the next `rr bench` report in `dir` should be written to:
/// one past the highest existing sequence number, starting at 1.
pub fn next_bench_path(dir: &Path) -> PathBuf {
    let next = bench_files(dir).last().map_or(1, |(seq, _)| seq + 1);
    dir.join(format!("{BENCH_PREFIX}{next}.json"))
}

/// The highest-sequence existing report in `dir` — the default `--check`
/// baseline.
pub fn latest_bench_path(dir: &Path) -> Option<PathBuf> {
    bench_files(dir).pop().map(|(_, path)| path)
}

/// Acts on a finished run: with a baseline (check mode) the report is
/// compared and *never* written to disk — in particular, a failing check
/// must not mint `BENCH_<n+1>.json`, or the regression it just caught
/// would become the next run's baseline. Without a baseline (record mode)
/// the report becomes the next sequence file in `dir`.
///
/// Returns the path written, or `None` in check mode.
///
/// # Errors
///
/// Check violations (from [`check`]) and report-write failures. On error,
/// no file has been written.
pub fn finish(
    dir: &Path,
    report: &BenchReport,
    baseline: Option<(&BenchReport, f64)>,
) -> Result<Option<PathBuf>, String> {
    match baseline {
        Some((base, tolerance)) => {
            check(report, base, tolerance)?;
            Ok(None)
        }
        None => {
            let path = next_bench_path(dir);
            std::fs::write(&path, report.to_json_pretty()?)
                .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
            Ok(Some(path))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::FaultFamily;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            suite: "quick".to_string(),
            seed: 1993,
            jobs: 1,
            cases: vec![BenchCaseReport {
                name: "fig5_cold".to_string(),
                iterations: 3,
                wall_nanos_median: 100_000_000,
                wall_nanos_min: 90_000_000,
                invariants: vec![Invariant { name: "points".into(), value: 18 }],
            }],
        }
    }

    #[test]
    fn report_round_trips_and_rejects_foreign_schemas() {
        let report = sample_report();
        let json = report.to_json_pretty().unwrap();
        assert_eq!(BenchReport::from_json(&json).unwrap(), report);
        let foreign = json.replacen(
            &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
            "\"schema_version\": 99",
            1,
        );
        let err = BenchReport::from_json(&foreign).unwrap_err();
        assert!(err.contains("schema v99"), "{err}");
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn check_accepts_identical_and_faster_runs() {
        let baseline = sample_report();
        assert!(check(&baseline, &baseline, 0.0).is_ok(), "identical run passes at 0%");
        let mut faster = baseline.clone();
        faster.cases[0].wall_nanos_median = 1; // speedups never fail
        assert!(check(&faster, &baseline, 0.0).is_ok());
    }

    #[test]
    fn check_fails_wall_regressions_beyond_tolerance_only() {
        let baseline = sample_report();
        let mut slower = baseline.clone();
        slower.cases[0].wall_nanos_median = 110_000_000; // +10%
        assert!(check(&slower, &baseline, 0.20).is_ok(), "within 20% tolerance");
        let err = check(&slower, &baseline, 0.05).unwrap_err();
        assert!(err.contains("wall regression"), "{err}");
        assert!(err.contains("fig5_cold"), "{err}");
    }

    #[test]
    fn check_absorbs_small_case_noise_under_the_absolute_floor() {
        // A millisecond-scale case jumping 4x is scheduler/fs noise, not a
        // perf regression; the absolute floor must absorb it even when the
        // relative tolerance alone would flag it.
        let mut baseline = sample_report();
        baseline.cases[0].wall_nanos_median = 800_000;
        let mut noisy = baseline.clone();
        noisy.cases[0].wall_nanos_median = 3_400_000;
        assert!(check(&noisy, &baseline, 0.25).is_ok(), "under the 5ms floor");
        // But past the floor the relative gate applies again.
        let mut regressed = baseline.clone();
        regressed.cases[0].wall_nanos_median = 800_000 + WALL_NOISE_FLOOR_NANOS + 1;
        let err = check(&regressed, &baseline, 0.25).unwrap_err();
        assert!(err.contains("wall regression"), "{err}");
    }

    #[test]
    fn check_fails_any_invariant_drift() {
        let baseline = sample_report();
        let mut drifted = baseline.clone();
        drifted.cases[0].invariants[0].value = 17;
        drifted.cases[0].wall_nanos_median = 1; // even when faster
        let err = check(&drifted, &baseline, 1.0).unwrap_err();
        assert!(err.contains("cycle-exact invariants changed"), "{err}");
    }

    #[test]
    fn check_fails_suite_and_case_set_mismatches() {
        let baseline = sample_report();
        let mut other = baseline.clone();
        other.suite = "full".to_string();
        assert!(check(&other, &baseline, 0.5).unwrap_err().contains("suite mismatch"));
        let mut missing = baseline.clone();
        missing.cases.clear();
        assert!(check(&missing, &baseline, 0.5).unwrap_err().contains("missing from this run"));
        let mut extra = baseline.clone();
        extra.cases.push(BenchCaseReport {
            name: "novel".to_string(),
            iterations: 3,
            wall_nanos_median: 1,
            wall_nanos_min: 1,
            invariants: vec![],
        });
        assert!(check(&extra, &baseline, 0.5).unwrap_err().contains("is new"));
    }

    #[test]
    fn bench_sequence_files_scan_and_advance() {
        let dir = std::env::temp_dir().join(format!("rr-bench-seq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_1.json"));
        assert_eq!(latest_bench_path(&dir), None);
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_3.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap(); // ignored
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_4.json"));
        assert_eq!(latest_bench_path(&dir), Some(dir.join("BENCH_3.json")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suites_pin_their_grids() {
        let quick = BenchConfig::new(Suite::Quick);
        let (fig5, fig6, traced, long) = suite_grids(&quick);
        assert_eq!(fig5.len(), 18, "one panel");
        assert_eq!(fig6.len(), 18);
        assert_eq!(fig5.base.threads, 8);
        assert_eq!(fig5.base.work_per_thread, 2_000);
        assert_eq!((traced.file_size, traced.run_length), (64, 8.0));
        assert_eq!(long.work_per_thread, 20_000, "10x the quick horizon");
        assert_eq!((long.file_size, long.run_length), (64, 8.0));
        assert_eq!(fig5.fault, FaultFamily::Cache);
        assert_eq!(fig6.fault, FaultFamily::Sync);
        assert_eq!(quick.iterations, 3);

        let full = BenchConfig::new(Suite::Full);
        let (fig5, fig6, _, long) = suite_grids(&full);
        assert_eq!(fig5.len(), 54, "three panels");
        assert_eq!(fig6.len(), 54);
        assert_eq!(long.work_per_thread, 200_000, "10x the full horizon");
        assert_eq!(full.iterations, 5);
        assert_eq!(full.jobs, 1, "single worker for stable walls");
    }

    #[test]
    fn median_averages_even_counts_and_takes_middle_of_odd() {
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 9]), 5);
        assert_eq!(median(&[1, 2, 100]), 2);
        // Even count: the mean of the two middles, not the lower one — a
        // single fast outlier must not drag the median down.
        assert_eq!(median(&[10, 10, 10, 100]), 10);
        assert_eq!(median(&[1, 10, 20, 100]), 15);
        // Rounds down on an odd sum of the middles.
        assert_eq!(median(&[0, 1, 2, 3]), 1);
        // Near-u64::MAX middles must not overflow.
        assert_eq!(median(&[u64::MAX - 2, u64::MAX]), u64::MAX - 1);
    }

    #[test]
    fn failed_check_writes_no_new_baseline() {
        let dir = std::env::temp_dir().join(format!("rr-bench-fin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let baseline = sample_report();
        let mut drifted = baseline.clone();
        drifted.cases[0].invariants[0].value = 17;
        // Check mode, failing: error out and leave the directory untouched.
        let err = finish(&dir, &drifted, Some((&baseline, 0.25))).unwrap_err();
        assert!(err.contains("cycle-exact invariants changed"), "{err}");
        assert!(bench_files(&dir).is_empty(), "failed check must not write a report");
        // Check mode, passing: still no file — checking never records.
        assert_eq!(finish(&dir, &baseline, Some((&baseline, 0.25))).unwrap(), None);
        assert!(bench_files(&dir).is_empty(), "passing check must not write either");

        // Record mode: sequence files advance and round-trip.
        let first = finish(&dir, &baseline, None).unwrap().unwrap();
        assert_eq!(first, dir.join("BENCH_1.json"));
        let second = finish(&dir, &baseline, None).unwrap().unwrap();
        assert_eq!(second, dir.join("BENCH_2.json"));
        let read = BenchReport::from_json(&std::fs::read_to_string(&second).unwrap()).unwrap();
        assert_eq!(read, baseline);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
