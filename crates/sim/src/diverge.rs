//! Lockstep divergence analysis: *when* and *why* two configurations of
//! the same seeded workload part ways.
//!
//! The paper's whole argument is a paired comparison — fixed partitioning
//! vs register-relocation contexts on an identical workload — but aggregate
//! statistics only say *how much* the legs differ. This module runs both
//! legs in lockstep and finds the exact first event at which their
//! histories diverge, with the machine state on each side of the split.
//!
//! # Protocol
//!
//! Both legs are [`Engine`]s over a [`RecordingSink`], stepped
//! checkpoint-to-checkpoint with [`Engine::advance`]:
//!
//! 1. **Lockstep scan.** Advance both legs one window at a time. A pause
//!    lands on the first scheduling boundary *at or after* the requested
//!    cycle, so the legs generally stop at different clocks; only events
//!    stamped strictly below the earlier clock (the *horizon*) are final on
//!    both sides. At each boundary the finalized prefixes are compared
//!    (`rr_runtime::event_diff`); equal prefixes are drained from the
//!    sinks, so scan memory stays bounded by one window regardless of run
//!    length. Clean boundaries snapshot both engines; the uncompared
//!    holdover events (between the horizon and each leg's clock) ride
//!    along with the snapshots to keep later comparisons aligned.
//! 2. **Bisection.** When a window's prefixes differ, the first divergent
//!    event lies somewhere inside it. Binary-search the window from the
//!    last clean snapshots: restore both legs, advance to the probe cycle,
//!    and compare the aligned re-run streams. Probes that agree move the
//!    lower bracket up (and re-snapshot there); probes that see the
//!    mismatch pull the upper bracket down to the divergence stamp. The
//!    search converges to the tightest pair of scheduling boundaries
//!    around the first divergent event.
//! 3. **Verification + report.** A final restored run from the narrowed
//!    bracket must reproduce the *identical* first divergent event — a
//!    replay-determinism check; a mismatch here is reported as an error,
//!    never a result. The report carries the divergent event with ±K
//!    events of context from each leg, the cumulative per-bucket cost
//!    split at the divergence cycle, and a field-by-field state diff of
//!    the two engines at their first boundaries at/after the divergence.
//!
//! Identical configurations compare equal to the very end (including the
//! final `RunEnd` totals), and the lockstep path's statistics are
//! bit-identical to an uninterrupted [`Engine::run`] — both properties are
//! property-tested.

use rr_runtime::event_diff::{self, Mismatch};
use rr_runtime::{Event, RecordingSink};
use serde::{Deserialize, Serialize};

use rr_alloc::ContextAllocator;

use crate::engine::Engine;
use crate::snapshot::EngineSnapshot;
use crate::stats::SimStats;

/// Knobs of the lockstep comparator. The defaults suit full-size
/// experiment runs; tests shrink the window to exercise many boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DivergeConfig {
    /// Lockstep stride in cycles: how far both legs advance between
    /// comparisons, and the upper bound on scan memory.
    pub window: u64,
    /// Events of context kept on each side of the divergent event.
    pub context: usize,
    /// Keep both legs' complete event streams (for trace export). Off by
    /// default: the scan then drains compared prefixes and memory stays
    /// bounded by one window.
    pub keep_events: bool,
}

impl Default for DivergeConfig {
    fn default() -> Self {
        DivergeConfig { window: 8192, context: 8, keep_events: false }
    }
}

/// One leg's identity and final outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LegReport {
    /// Human label ("fixed", "flexible", ...).
    pub label: String,
    /// The leg's complete final statistics (run to completion even when
    /// the streams diverged early, so reports can state totals).
    pub stats: SimStats,
    /// The full event stream, present only under
    /// [`DivergeConfig::keep_events`].
    pub events: Option<Vec<Event>>,
}

/// One differing field of the two engines' states at the divergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDelta {
    /// What differs.
    pub field: String,
    /// Leg A's value, rendered.
    pub a: String,
    /// Leg B's value, rendered.
    pub b: String,
}

/// Everything known about the first point where the legs part ways.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Cycle of the first divergent event (the earlier stamp when the two
    /// sides disagree about timing).
    pub cycle: u64,
    /// Absolute index of the divergent position in both event streams.
    pub event_index: u64,
    /// The lockstep window `[last clean horizon, mismatch horizon)` the
    /// divergence surfaced in.
    pub window: (u64, u64),
    /// The bisection-narrowed bracket around the divergence cycle.
    pub bracket: (u64, u64),
    /// Restore-and-advance probes the bisection ran.
    pub bisect_steps: u32,
    /// Leg A's event at the divergent position (`None`: A emitted nothing
    /// there while B acted).
    pub first_a: Option<Event>,
    /// Leg B's event at the divergent position.
    pub first_b: Option<Event>,
    /// ±K events around the divergence from leg A.
    pub context_a: Vec<Event>,
    /// ±K events around the divergence from leg B.
    pub context_b: Vec<Event>,
    /// Leg A's cumulative per-bucket cycle costs up to (strictly below)
    /// the divergence cycle, in `CostBucket` declaration order.
    pub cost_a: [u64; 9],
    /// Leg B's cumulative per-bucket costs at the same point.
    pub cost_b: [u64; 9],
    /// Fields differing between the two engine states at their first
    /// scheduling boundaries at/after the divergence cycle.
    pub state: Vec<StateDelta>,
}

/// The comparator's result: two finished legs plus the divergence, if any.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergeOutcome {
    /// Leg A (by convention the baseline, e.g. fixed).
    pub a: LegReport,
    /// Leg B (by convention the candidate, e.g. flexible).
    pub b: LegReport,
    /// `None` when the streams (including the final totals) are identical.
    pub divergence: Option<Divergence>,
    /// Lockstep windows the scan stepped through.
    pub windows_scanned: u64,
    /// Events per leg confirmed identical before the divergence (or in
    /// total, when there is none).
    pub events_compared: u64,
}

/// One leg's scan-side bookkeeping: the engine, its completion flag, and
/// the cursor separating compared from uncompared sink events.
struct Leg {
    engine: Engine<RecordingSink>,
    done: bool,
    /// Sink index of the first uncompared event (always 0 when draining).
    off: usize,
}

impl Leg {
    fn uncompared(&self) -> &[Event] {
        &self.engine.sink().events()[self.off..]
    }

    /// Advances past (or drains) `n` freshly compared events.
    fn consume(&mut self, n: usize, keep: bool) {
        if keep {
            self.off += n;
        } else {
            self.engine.sink_mut().drain_prefix(n);
        }
    }
}

/// A restartable position: both engines snapshotted at clean boundaries,
/// plus the events each had already emitted beyond the commonly verified
/// horizon (the pause-overshoot holdover). `hold ++ re-emitted events`
/// reconstructs each leg's stream from `horizon` exactly.
#[derive(Clone)]
struct Bracket {
    snap_a: EngineSnapshot,
    snap_b: EngineSnapshot,
    hold_a: Vec<Event>,
    hold_b: Vec<Event>,
    /// Streams are verified equal strictly below this cycle.
    horizon: u64,
}

/// Runs two engine legs in lockstep and reports their first divergence.
///
/// Both engines must be freshly constructed (cycle 0). `labels` name the
/// legs in the report, A first.
///
/// # Errors
///
/// Propagates configuration errors, snapshot-restore failures, and — as a
/// hard error, never a report — a restored re-run that fails to reproduce
/// the scan's divergence (broken replay determinism).
pub fn compare_legs(
    a: Engine<RecordingSink>,
    b: Engine<RecordingSink>,
    labels: (&str, &str),
    cfg: &DivergeConfig,
) -> Result<DivergeOutcome, String> {
    if cfg.window == 0 {
        return Err("diverge window must be >= 1 cycle".to_string());
    }
    let mut a = Leg { engine: a, done: false, off: 0 };
    let mut b = Leg { engine: b, done: false, off: 0 };
    let mut bracket = Bracket {
        snap_a: a.engine.snapshot(),
        snap_b: b.engine.snapshot(),
        hold_a: Vec::new(),
        hold_b: Vec::new(),
        horizon: 0,
    };
    let mut windows: u64 = 0;
    let mut compared: u64 = 0;
    let mut found: Option<(Mismatch, u64)> = None; // mismatch + its horizon

    loop {
        let base = match (a.done, b.done) {
            (false, false) => a.engine.now().max(b.engine.now()),
            (false, true) => a.engine.now(),
            (true, false) => b.engine.now(),
            (true, true) => unreachable!("loop exits when both legs are done"),
        };
        let pause = base.saturating_add(cfg.window);
        if !a.done {
            a.done = a.engine.advance(pause);
        }
        if !b.done {
            b.done = b.engine.advance(pause);
        }
        windows += 1;
        let horizon = scan_horizon(&a, &b);
        if let Some(m) = event_diff::first_divergence(a.uncompared(), b.uncompared(), horizon) {
            found = Some((m, horizon));
            break;
        }
        let n = event_diff::finalized_len(a.uncompared(), horizon);
        debug_assert_eq!(n, event_diff::finalized_len(b.uncompared(), horizon));
        compared += n as u64;
        a.consume(n, cfg.keep_events);
        b.consume(n, cfg.keep_events);
        if a.done && b.done {
            break;
        }
        if !a.done && !b.done {
            bracket = Bracket {
                snap_a: a.engine.snapshot(),
                snap_b: b.engine.snapshot(),
                hold_a: a.uncompared().to_vec(),
                hold_b: b.uncompared().to_vec(),
                horizon,
            };
        }
        // With one leg finished, the bracket stays at the last boundary
        // both legs reached — a later mismatch still bisects from common
        // ground.
    }

    match found {
        None => {
            // Streams identical through the last event; the totals must
            // agree too. `finish` appends each leg's RunEnd.
            let (stats_a, sink_a) = a.engine.finish();
            let (stats_b, sink_b) = b.engine.finish();
            let events_a = sink_a.into_events();
            let events_b = sink_b.into_events();
            let end_a = events_a.last().copied();
            let end_b = events_b.last().copied();
            let divergence = if end_a == end_b {
                compared += 1; // the matching RunEnd pair
                None
            } else {
                Some(run_end_divergence(
                    end_a,
                    end_b,
                    &stats_a,
                    &stats_b,
                    compared,
                    bracket.horizon,
                ))
            };
            Ok(DivergeOutcome {
                a: leg_report(labels.0, stats_a, events_a, cfg),
                b: leg_report(labels.1, stats_b, events_b, cfg),
                divergence,
                windows_scanned: windows,
                events_compared: compared,
            })
        }
        Some((scan_m, mismatch_horizon)) => {
            let window_bounds = (bracket.horizon, mismatch_horizon);
            let event_index = compared + scan_m.index as u64;
            let (divergence, steps) =
                bisect(&bracket, mismatch_horizon, &scan_m, event_index, window_bounds, cfg)?;
            // Run both legs out for their final totals. Comparison is
            // over; drain as we go unless the caller wants full streams.
            let (stats_a, events_a) = run_out(a, cfg);
            let (stats_b, events_b) = run_out(b, cfg);
            let _ = steps;
            Ok(DivergeOutcome {
                a: leg_report(labels.0, stats_a, events_a, cfg),
                b: leg_report(labels.1, stats_b, events_b, cfg),
                divergence: Some(divergence),
                windows_scanned: windows,
                events_compared: compared,
            })
        }
    }
}

/// The cycle below which both legs' events are final: the earlier clock of
/// the still-running legs, or unbounded once both are done.
fn scan_horizon(a: &Leg, b: &Leg) -> u64 {
    match (a.done, b.done) {
        (true, true) => u64::MAX,
        (true, false) => b.engine.now(),
        (false, true) => a.engine.now(),
        (false, false) => a.engine.now().min(b.engine.now()),
    }
}

fn leg_report(
    label: &str,
    stats: SimStats,
    events: Vec<Event>,
    cfg: &DivergeConfig,
) -> LegReport {
    LegReport {
        label: label.to_string(),
        stats,
        events: if cfg.keep_events { Some(events) } else { None },
    }
}

/// Finishes a leg whose comparison is over, draining periodically so the
/// remaining run does not accumulate events nobody will read.
fn run_out(mut leg: Leg, cfg: &DivergeConfig) -> (SimStats, Vec<Event>) {
    while !leg.done {
        let pause = leg.engine.now().saturating_add(RUN_OUT_STRIDE);
        leg.done = leg.engine.advance(pause);
        if !cfg.keep_events {
            let n = leg.engine.sink().len();
            leg.engine.sink_mut().drain_prefix(n);
        }
    }
    let (stats, sink) = leg.engine.finish();
    (stats, sink.into_events())
}

/// Cycle stride used to run a diverged leg out to completion.
const RUN_OUT_STRIDE: u64 = 1 << 20;

/// Restores both legs of a bracket with fresh recording sinks.
fn restore_pair(
    bracket: &Bracket,
) -> Result<(Engine<RecordingSink>, Engine<RecordingSink>), String> {
    let a = Engine::restore_with_sink(&bracket.snap_a, RecordingSink::new())
        .map_err(|e| format!("diverge bisection cannot restore leg A: {e}"))?;
    let b = Engine::restore_with_sink(&bracket.snap_b, RecordingSink::new())
        .map_err(|e| format!("diverge bisection cannot restore leg B: {e}"))?;
    Ok((a, b))
}

/// The aligned stream of one restored leg from the bracket's horizon:
/// holdover events first, then everything re-emitted since the restore.
fn aligned(hold: &[Event], re_emitted: &[Event]) -> Vec<Event> {
    let mut out = Vec::with_capacity(hold.len() + re_emitted.len());
    out.extend_from_slice(hold);
    out.extend_from_slice(re_emitted);
    out
}

/// Binary-searches the first differing window down to the exact divergent
/// event, then verifies and assembles the full [`Divergence`] report.
fn bisect(
    start: &Bracket,
    mismatch_horizon: u64,
    scan_m: &Mismatch,
    event_index: u64,
    window_bounds: (u64, u64),
    cfg: &DivergeConfig,
) -> Result<(Divergence, u32), String> {
    let mut bracket = start.clone();
    let mut lo = bracket.horizon;
    let mut hi = mismatch_horizon;
    let mut steps: u32 = 0;

    while steps < 64 && hi.saturating_sub(lo) > 1 {
        let mid = lo + (hi - lo) / 2;
        if mid <= bracket.snap_a.now.max(bracket.snap_b.now) {
            break;
        }
        let (mut ra, mut rb) = restore_pair(&bracket)?;
        let done_a = ra.advance(mid);
        let done_b = rb.advance(mid);
        steps += 1;
        let horizon = probe_horizon(done_a, done_b, &ra, &rb);
        let full_a = aligned(&bracket.hold_a, ra.sink().events());
        let full_b = aligned(&bracket.hold_b, rb.sink().events());
        match event_diff::first_divergence(&full_a, &full_b, horizon) {
            Some(m) => {
                let cut = m.cycle().saturating_add(1);
                if cut >= hi {
                    break; // replay found the same stamp again; no tighter
                }
                hi = cut;
            }
            None => {
                if horizon <= lo || horizon >= hi || done_a || done_b {
                    break;
                }
                let n = event_diff::finalized_len(&full_a, horizon);
                bracket = Bracket {
                    snap_a: ra.snapshot(),
                    snap_b: rb.snapshot(),
                    hold_a: full_a[n..].to_vec(),
                    hold_b: full_b[n..].to_vec(),
                    horizon,
                };
                lo = horizon;
            }
        }
    }

    // Final pass: re-run from the narrowed bracket until the divergence is
    // in hand, plus one extra window of trailing context.
    let (mut fa, mut fb) = restore_pair(&bracket)?;
    let mut done_a = false;
    let mut done_b = false;
    let final_m = loop {
        let base = match (done_a, done_b) {
            (false, false) => fa.now().max(fb.now()),
            (false, true) => fa.now(),
            (true, false) => fb.now(),
            (true, true) => {
                return Err(
                    "diverge re-run completed without reproducing the divergence \
                     (broken replay determinism)"
                        .to_string(),
                )
            }
        };
        let pause = base.saturating_add(cfg.window);
        if !done_a {
            done_a = fa.advance(pause);
        }
        if !done_b {
            done_b = fb.advance(pause);
        }
        let horizon = probe_horizon(done_a, done_b, &fa, &fb);
        let full_a = aligned(&bracket.hold_a, fa.sink().events());
        let full_b = aligned(&bracket.hold_b, fb.sink().events());
        if let Some(m) = event_diff::first_divergence(&full_a, &full_b, horizon) {
            // One extra window on each side for trailing context.
            if !done_a {
                fa.advance(fa.now().saturating_add(cfg.window));
            }
            if !done_b {
                fb.advance(fb.now().saturating_add(cfg.window));
            }
            break m;
        }
        if done_a && done_b {
            return Err(
                "diverge re-run completed without reproducing the divergence \
                 (broken replay determinism)"
                    .to_string(),
            );
        }
    };

    if final_m.events != scan_m.events {
        return Err(format!(
            "diverge re-run reproduced a different first divergence \
             (scan {:?} vs re-run {:?}): broken replay determinism",
            scan_m.events, final_m.events
        ));
    }

    let cycle = final_m.cycle();
    let full_a = aligned(&bracket.hold_a, fa.sink().events());
    let full_b = aligned(&bracket.hold_b, fb.sink().events());
    let cost_a = cost_at(&bracket.snap_a, &bracket.hold_a, fa.sink().events(), cycle);
    let cost_b = cost_at(&bracket.snap_b, &bracket.hold_b, fb.sink().events(), cycle);
    let state = state_at_divergence(&bracket, cycle)?;
    let divergence = Divergence {
        cycle,
        event_index,
        window: window_bounds,
        bracket: (lo, hi.min(mismatch_horizon)),
        bisect_steps: steps,
        first_a: final_m.events[0],
        first_b: final_m.events[1],
        context_a: event_diff::context_window(&full_a, final_m.index, cfg.context).to_vec(),
        context_b: event_diff::context_window(&full_b, final_m.index, cfg.context).to_vec(),
        cost_a,
        cost_b,
        state,
    };
    Ok((divergence, steps))
}

fn probe_horizon(
    done_a: bool,
    done_b: bool,
    a: &Engine<RecordingSink>,
    b: &Engine<RecordingSink>,
) -> u64 {
    match (done_a, done_b) {
        (true, true) => u64::MAX,
        (true, false) => b.now(),
        (false, true) => a.now(),
        (false, false) => a.now().min(b.now()),
    }
}

/// Exact cumulative per-bucket costs strictly below `cycle`, from a
/// snapshot's accumulators corrected for the holdover (charges the
/// snapshot already counted but that land at or after `cycle`) plus the
/// re-emitted charges below it.
fn cost_at(snap: &EngineSnapshot, hold: &[Event], re_emitted: &[Event], cycle: u64) -> [u64; 9] {
    let mut cost = snap.cost;
    let hold_all = event_diff::cost_below(hold, u64::MAX);
    let hold_before = event_diff::cost_below(hold, cycle);
    let re_before = event_diff::cost_below(re_emitted, cycle);
    for i in 0..9 {
        cost[i] = cost[i] - (hold_all[i] - hold_before[i]) + re_before[i];
    }
    cost
}

/// Restores both legs once more and advances each to its first scheduling
/// boundary at/after the divergence cycle, then diffs their states.
fn state_at_divergence(bracket: &Bracket, cycle: u64) -> Result<Vec<StateDelta>, String> {
    let mut sa = Engine::restore(&bracket.snap_a)
        .map_err(|e| format!("diverge state diff cannot restore leg A: {e}"))?;
    let mut sb = Engine::restore(&bracket.snap_b)
        .map_err(|e| format!("diverge state diff cannot restore leg B: {e}"))?;
    sa.advance(cycle);
    sb.advance(cycle);
    Ok(state_deltas(&sa.snapshot(), &sb.snapshot()))
}

/// Field-by-field comparison of two engine states; only differing fields
/// are reported.
fn state_deltas(a: &EngineSnapshot, b: &EngineSnapshot) -> Vec<StateDelta> {
    let mut out = Vec::new();
    let mut push = |field: &str, va: String, vb: String| {
        if va != vb {
            out.push(StateDelta { field: field.to_string(), a: va, b: vb });
        }
    };
    push("cycle", a.now.to_string(), b.now.to_string());
    push("resident_contexts", a.ring.len().to_string(), b.ring.len().to_string());
    push("supply_depth", a.supply.len().to_string(), b.supply.len().to_string());
    push("timers_outstanding", a.timers.len().to_string(), b.timers.len().to_string());
    push(
        "free_registers",
        a.alloc.free_registers().to_string(),
        b.alloc.free_registers().to_string(),
    );
    push(
        "alloc_blocked_for",
        format!("{:?}", a.alloc_blocked_for),
        format!("{:?}", b.alloc_blocked_for),
    );
    push(
        "completed_threads",
        a.stats.completed_threads.to_string(),
        b.stats.completed_threads.to_string(),
    );
    push("faults", a.stats.faults.to_string(), b.stats.faults.to_string());
    push("alloc_failures", a.stats.alloc_failures.to_string(), b.stats.alloc_failures.to_string());
    push("rng", format!("{:016x?}", a.rng), format!("{:016x?}", b.rng));
    for (i, bucket) in rr_runtime::CostBucket::ALL.iter().enumerate() {
        push(
            &format!("cost[{}]", bucket.label()),
            a.cost[i].to_string(),
            b.cost[i].to_string(),
        );
    }
    out
}

/// The degenerate divergence where the streams matched event for event but
/// the closing `RunEnd` totals differ. Not expected from a deterministic
/// engine (identical histories imply identical totals), but the comparator
/// reports it rather than calling unequal totals "no divergence".
fn run_end_divergence(
    end_a: Option<Event>,
    end_b: Option<Event>,
    stats_a: &SimStats,
    stats_b: &SimStats,
    event_index: u64,
    clean_horizon: u64,
) -> Divergence {
    Divergence {
        cycle: stats_a.total_cycles.min(stats_b.total_cycles),
        event_index,
        window: (clean_horizon, u64::MAX),
        bracket: (clean_horizon, u64::MAX),
        bisect_steps: 0,
        first_a: end_a,
        first_b: end_b,
        context_a: end_a.into_iter().collect(),
        context_b: end_b.into_iter().collect(),
        cost_a: stats_cost(stats_a),
        cost_b: stats_cost(stats_b),
        state: vec![StateDelta {
            field: "total_cycles".to_string(),
            a: stats_a.total_cycles.to_string(),
            b: stats_b.total_cycles.to_string(),
        }],
    }
}

/// A finished run's named buckets back in accumulator-array order.
fn stats_cost(stats: &SimStats) -> [u64; 9] {
    [
        stats.busy_cycles,
        stats.switch_cycles,
        stats.spin_cycles,
        stats.alloc_cycles,
        stats.dealloc_cycles,
        stats.load_cycles,
        stats.unload_cycles,
        stats.queue_cycles,
        stats.idle_cycles,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_alloc::BitmapAllocator;
    use rr_runtime::{SchedCosts, UnloadPolicyKind};
    use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

    use crate::options::SimOptions;

    fn engine(file_size: u32, seed: u64) -> Engine<RecordingSink> {
        let workload = WorkloadBuilder::new()
            .threads(24)
            .run_length(Dist::Geometric { mean: 16.0 })
            .latency(Dist::Constant(200))
            .context_size(ContextSizeDist::PAPER_UNIFORM)
            .work_per_thread(4_000)
            .seed(seed)
            .build()
            .unwrap();
        Engine::with_sink(
            BitmapAllocator::new(file_size).unwrap(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            workload,
            SimOptions::cache_experiments(),
            RecordingSink::new(),
        )
        .unwrap()
    }

    fn small_cfg() -> DivergeConfig {
        // A small window exercises many lockstep boundaries and a real
        // bisection even on short test runs.
        DivergeConfig { window: 512, context: 3, keep_events: false }
    }

    #[test]
    fn identical_legs_never_diverge_and_match_a_straight_run() {
        let out =
            compare_legs(engine(128, 7), engine(128, 7), ("a", "b"), &small_cfg()).unwrap();
        assert!(out.divergence.is_none(), "{:?}", out.divergence);
        assert_eq!(out.a.stats, out.b.stats);
        assert!(out.events_compared > 0);
        assert!(out.windows_scanned > 1, "window too large to exercise lockstep");
        // The lockstep path must be bit-identical to an uninterrupted run.
        let straight = engine(128, 7).run();
        assert_eq!(out.a.stats, straight);
    }

    #[test]
    fn different_file_sizes_diverge_deterministically() {
        let cfg = small_cfg();
        let out = compare_legs(engine(64, 7), engine(128, 7), ("small", "large"), &cfg).unwrap();
        let d = out.divergence.as_ref().expect("64 vs 128 registers must diverge");
        assert!(d.first_a.is_some() || d.first_b.is_some());
        assert_ne!(d.first_a, d.first_b);
        assert!(d.cycle >= d.window.0 && d.cycle < d.window.1.max(1));
        assert!(!d.context_a.is_empty() && !d.context_b.is_empty());
        assert!(d.cost_a.iter().sum::<u64>() <= d.cycle + 1);
        assert!(!d.state.is_empty(), "states at the divergence must differ somewhere");
        // Byte-level determinism: a second comparison reproduces the
        // identical report.
        let again =
            compare_legs(engine(64, 7), engine(128, 7), ("small", "large"), &cfg).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn keep_events_mode_finds_the_same_divergence_with_full_streams() {
        let cfg = small_cfg();
        let keep = DivergeConfig { keep_events: true, ..cfg };
        let drained =
            compare_legs(engine(64, 7), engine(128, 7), ("small", "large"), &cfg).unwrap();
        let kept =
            compare_legs(engine(64, 7), engine(128, 7), ("small", "large"), &keep).unwrap();
        let (dd, dk) = (drained.divergence.unwrap(), kept.divergence.unwrap());
        assert_eq!(dd.cycle, dk.cycle);
        assert_eq!(dd.event_index, dk.event_index);
        assert_eq!(dd.first_a, dk.first_a);
        assert_eq!(dd.first_b, dk.first_b);
        let events = kept.a.events.as_ref().expect("keep_events retains the stream");
        assert!(!events.is_empty());
        assert!(drained.a.events.is_none(), "drain mode retains nothing");
        // The kept stream really is the whole history: it starts at the
        // RunStart and ends at the RunEnd.
        assert!(matches!(events.first().unwrap().kind, rr_runtime::EventKind::RunStart { .. }));
        assert!(matches!(events.last().unwrap().kind, rr_runtime::EventKind::RunEnd { .. }));
    }

    #[test]
    fn window_size_does_not_change_the_verdict() {
        let coarse = DivergeConfig { window: 4096, context: 3, keep_events: false };
        let fine = DivergeConfig { window: 128, context: 3, keep_events: false };
        let dc = compare_legs(engine(64, 9), engine(128, 9), ("a", "b"), &coarse)
            .unwrap()
            .divergence
            .unwrap();
        let df = compare_legs(engine(64, 9), engine(128, 9), ("a", "b"), &fine)
            .unwrap()
            .divergence
            .unwrap();
        assert_eq!(dc.cycle, df.cycle);
        assert_eq!(dc.event_index, df.event_index);
        assert_eq!(dc.first_a, df.first_a);
        assert_eq!(dc.first_b, df.first_b);
        assert_eq!(dc.cost_a, df.cost_a);
        assert_eq!(dc.cost_b, df.cost_b);
    }

    #[test]
    fn zero_window_is_rejected() {
        let cfg = DivergeConfig { window: 0, ..DivergeConfig::default() };
        let err = compare_legs(engine(128, 1), engine(128, 1), ("a", "b"), &cfg).unwrap_err();
        assert!(err.contains("window"), "{err}");
    }

    #[test]
    fn outcome_serializes_and_round_trips() {
        let out = compare_legs(
            engine(64, 7),
            engine(128, 7),
            ("small", "large"),
            &small_cfg(),
        )
        .unwrap();
        let json = serde_json::to_string(&out).unwrap();
        let back: DivergeOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out);
    }
}
