//! Per-thread runtime state inside the simulator.

use serde::{Deserialize, Serialize};

use rr_alloc::ContextHandle;
use rr_workload::ThreadSpec;

/// Where a thread is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Never run; waiting in the supply queue.
    Unstarted,
    /// Unloaded and runnable; waiting in the software ready queue.
    ReadyUnloaded,
    /// Unloaded while its fault is still outstanding; wakes at the stored
    /// cycle and then joins the ready queue.
    BlockedUnloaded {
        /// Absolute cycle at which the fault completes.
        wake: u64,
    },
    /// Resident and runnable.
    ResidentReady,
    /// Resident with an outstanding fault.
    ResidentBlocked {
        /// Absolute cycle at which the fault completes.
        wake: u64,
    },
    /// Completed all its work.
    Done,
}

/// A thread's dynamic state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadRt {
    /// The static specification.
    pub spec: ThreadSpec,
    /// Lifecycle phase.
    pub phase: Phase,
    /// The context currently holding the thread's registers, when resident.
    pub ctx: Option<ContextHandle>,
    /// Useful cycles still to execute.
    pub remaining: u64,
}

impl ThreadRt {
    /// Fresh state for a specification.
    pub fn new(spec: ThreadSpec) -> Self {
        ThreadRt { remaining: spec.total_work, spec, phase: Phase::Unstarted, ctx: None }
    }

    /// Whether the thread is resident (ready or blocked).
    pub fn is_resident(&self) -> bool {
        matches!(self.phase, Phase::ResidentReady | Phase::ResidentBlocked { .. })
    }

    /// Whether a resident thread can run now.
    pub fn is_ready_at(&self, now: u64) -> bool {
        match self.phase {
            Phase::ResidentReady => true,
            Phase::ResidentBlocked { wake } => wake <= now,
            _ => false,
        }
    }
}

/// Per-thread state as parallel arrays indexed by dense thread id — the
/// engine's hot-path layout. Scheduling decisions touch one field of many
/// threads (a phase probe per ring hop, a remaining-work decrement per
/// dispatch), so splitting the columns keeps each probe on a cache line of
/// its own kind instead of striding over whole [`ThreadRt`]-style records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadArena {
    /// Lifecycle phase per thread.
    pub phase: Vec<Phase>,
    /// Useful cycles still to execute per thread.
    pub remaining: Vec<u64>,
    /// Registers the thread's context must hold (static, from the spec).
    pub regs_needed: Vec<u32>,
    /// The context currently holding each thread's registers, when resident.
    pub ctx: Vec<Option<ContextHandle>>,
}

impl ThreadArena {
    /// Fresh arena for a workload's thread specifications.
    pub fn new(specs: &[ThreadSpec]) -> Self {
        ThreadArena {
            phase: vec![Phase::Unstarted; specs.len()],
            remaining: specs.iter().map(|s| s.total_work).collect(),
            regs_needed: specs.iter().map(|s| s.regs_needed).collect(),
            ctx: vec![None; specs.len()],
        }
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// Whether the arena holds no threads.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Whether a resident thread can run now — the ring walk's probe.
    #[inline]
    pub fn is_ready_at(&self, tid: usize, now: u64) -> bool {
        match self.phase[tid] {
            Phase::ResidentReady => true,
            Phase::ResidentBlocked { wake } => wake <= now,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ThreadSpec {
        ThreadSpec { id: 0, regs_needed: 8, total_work: 100 }
    }

    #[test]
    fn fresh_thread_state() {
        let t = ThreadRt::new(spec());
        assert_eq!(t.phase, Phase::Unstarted);
        assert_eq!(t.remaining, 100);
        assert!(!t.is_resident());
        assert!(!t.is_ready_at(0));
    }

    #[test]
    fn readiness_tracks_wake_time() {
        let mut t = ThreadRt::new(spec());
        t.phase = Phase::ResidentBlocked { wake: 50 };
        assert!(t.is_resident());
        assert!(!t.is_ready_at(49));
        assert!(t.is_ready_at(50));
        t.phase = Phase::ResidentReady;
        assert!(t.is_ready_at(0));
    }

    #[test]
    fn arena_mirrors_per_thread_state() {
        let specs = [
            ThreadSpec { id: 0, regs_needed: 8, total_work: 100 },
            ThreadSpec { id: 1, regs_needed: 16, total_work: 50 },
        ];
        let mut a = ThreadArena::new(&specs);
        assert_eq!(a.len(), 2);
        assert_eq!(a.remaining, vec![100, 50]);
        assert_eq!(a.regs_needed, vec![8, 16]);
        assert!(!a.is_ready_at(0, 0));
        a.phase[1] = Phase::ResidentBlocked { wake: 50 };
        assert!(!a.is_ready_at(1, 49));
        assert!(a.is_ready_at(1, 50));
        a.phase[0] = Phase::ResidentReady;
        assert!(a.is_ready_at(0, 0));
    }
}
