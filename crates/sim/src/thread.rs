//! Per-thread runtime state inside the simulator.

use serde::{Deserialize, Serialize};

use rr_alloc::ContextHandle;
use rr_workload::ThreadSpec;

/// Where a thread is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Never run; waiting in the supply queue.
    Unstarted,
    /// Unloaded and runnable; waiting in the software ready queue.
    ReadyUnloaded,
    /// Unloaded while its fault is still outstanding; wakes at the stored
    /// cycle and then joins the ready queue.
    BlockedUnloaded {
        /// Absolute cycle at which the fault completes.
        wake: u64,
    },
    /// Resident and runnable.
    ResidentReady,
    /// Resident with an outstanding fault.
    ResidentBlocked {
        /// Absolute cycle at which the fault completes.
        wake: u64,
    },
    /// Completed all its work.
    Done,
}

/// A thread's dynamic state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadRt {
    /// The static specification.
    pub spec: ThreadSpec,
    /// Lifecycle phase.
    pub phase: Phase,
    /// The context currently holding the thread's registers, when resident.
    pub ctx: Option<ContextHandle>,
    /// Useful cycles still to execute.
    pub remaining: u64,
}

impl ThreadRt {
    /// Fresh state for a specification.
    pub fn new(spec: ThreadSpec) -> Self {
        ThreadRt { remaining: spec.total_work, spec, phase: Phase::Unstarted, ctx: None }
    }

    /// Whether the thread is resident (ready or blocked).
    pub fn is_resident(&self) -> bool {
        matches!(self.phase, Phase::ResidentReady | Phase::ResidentBlocked { .. })
    }

    /// Whether a resident thread can run now.
    pub fn is_ready_at(&self, now: u64) -> bool {
        match self.phase {
            Phase::ResidentReady => true,
            Phase::ResidentBlocked { wake } => wake <= now,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ThreadSpec {
        ThreadSpec { id: 0, regs_needed: 8, total_work: 100 }
    }

    #[test]
    fn fresh_thread_state() {
        let t = ThreadRt::new(spec());
        assert_eq!(t.phase, Phase::Unstarted);
        assert_eq!(t.remaining, 100);
        assert!(!t.is_resident());
        assert!(!t.is_ready_at(0));
    }

    #[test]
    fn readiness_tracks_wake_time() {
        let mut t = ThreadRt::new(spec());
        t.phase = Phase::ResidentBlocked { wake: 50 };
        assert!(t.is_resident());
        assert!(!t.is_ready_at(49));
        assert!(t.is_ready_at(50));
        t.phase = Phase::ResidentReady;
        assert!(t.is_ready_at(0));
    }
}
