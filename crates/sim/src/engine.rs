//! The coarse-multithreading simulation engine.
//!
//! One processor, one register file, a supply of synthetic threads. The
//! processor runs a thread until it faults (geometric run lengths), switches
//! contexts in software (Figure 3 costs), and hides the fault latency behind
//! other resident contexts. Context allocation, loading, unloading, and
//! queueing are charged per the paper's Figure 4; all policy differences
//! between the *Flexible* (register relocation) and *Fixed* (hardware
//! windows) architectures enter through the [`ContextAllocator`] and the
//! cost tables it carries.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rr_alloc::{AllocCosts, AnyAllocator, ContextAllocator};
use rr_runtime::{
    CostBucket, Event, EventKind, EventSink, NullSink, ReadyRing, SchedCosts, UnloadDecision,
    UnloadGovernor, UnloadPolicyKind,
};
use rr_workload::Workload;

use crate::options::SimOptions;
use crate::snapshot::{EngineSnapshot, SnapshotError, SNAPSHOT_SCHEMA_VERSION};
use crate::stats::{decimate_checkpoints, SimStats};
use crate::thread::{Phase, ThreadArena};
use crate::timer::TimerRing;

/// A run's statistics paired with the host-side wall-clock time it took —
/// the per-run observability record the sweep runner aggregates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TracedRun {
    /// Full cycle-accounting statistics of the run.
    pub stats: SimStats,
    /// Host wall-clock nanoseconds spent simulating.
    pub wall_nanos: u64,
}

/// Result of a load attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadOutcome {
    /// A context was allocated and loaded.
    Loaded,
    /// A runnable thread is waiting but residency or registers block it.
    NeedSpace,
    /// The software queue is empty.
    NothingToLoad,
}

/// The discrete-event simulator for one multithreaded processor node.
///
/// Generic over an [`EventSink`]; the default [`NullSink`] reports itself
/// disabled, so every emission site below compiles away and a plain
/// [`Engine::new`]/[`Engine::run`] is instruction-for-instruction the
/// unobserved simulator. Construct with [`Engine::with_sink`] and run with
/// [`Engine::run_with_sink`] to capture the cycle-stamped event stream.
pub struct Engine<S: EventSink = NullSink> {
    /// The context allocator, monomorphized: every alloc/dealloc/cost call
    /// dispatches by match and inlines, instead of through a vtable.
    alloc: AnyAllocator,
    /// The allocator's cost table, hoisted at construction (it is fixed for
    /// an allocator's lifetime) so hot paths skip even the match.
    alloc_costs: AllocCosts,
    sched: SchedCosts,
    governor: UnloadGovernor,
    workload: Workload,
    opts: SimOptions,
    rng: SmallRng,

    /// Per-thread state in struct-of-arrays layout, indexed by dense id.
    arena: ThreadArena,
    /// Per-thread unload cost (`sched.unload_cost(regs_needed)`),
    /// precomputed once — the spin sweep reads it on every probe.
    unload_cost: Vec<u64>,
    /// Resident contexts, in `NextRRM` ring order.
    ring: ReadyRing,
    /// Software queue of unloaded runnable threads (FIFO).
    supply: VecDeque<usize>,
    /// Outstanding fault completions, popped in `(wake, tid)` order.
    timers: TimerRing,
    /// While `Some(tid)`, allocation for the queue head `tid` is known to
    /// fail until some context is deallocated; avoids charging the same
    /// failed attempt every scheduling decision.
    alloc_blocked_for: Option<usize>,

    now: u64,
    stats: SimStats,
    /// Cycle accumulators indexed by `CostBucket` discriminant — the
    /// branchless form of the per-bucket `match`; folded into the named
    /// `SimStats` fields when the run ends.
    cost: [u64; 9],
    resident_integral: u128,
    next_checkpoint: u64,
    /// Multiplier on `checkpoint_interval`, doubled at each decimation of
    /// the checkpoint reservoir.
    checkpoint_stride: u64,
    /// Last cycle at which the supply queue held a runnable thread.
    last_pressure: u64,
    /// Whether the run has begun (`RunStart` emitted). Restored engines
    /// resume with this set so the event stream continues without a second
    /// `RunStart`.
    started: bool,
    sink: S,
}

impl Engine {
    /// Creates an unobserved engine (the default [`NullSink`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason if the options are invalid or any
    /// thread could never fit the allocator (e.g. a 40-register thread on
    /// 32-register fixed windows).
    pub fn new(
        alloc: impl Into<AnyAllocator>,
        sched: SchedCosts,
        policy: UnloadPolicyKind,
        workload: Workload,
        opts: SimOptions,
    ) -> Result<Self, String> {
        Engine::with_sink(alloc, sched, policy, workload, opts, NullSink)
    }

    /// Rebuilds an unobserved engine from a snapshot; see
    /// [`Engine::restore_with_sink`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::restore_with_sink`].
    pub fn restore(snap: &EngineSnapshot) -> Result<Self, SnapshotError> {
        Engine::restore_with_sink(snap, NullSink)
    }
}

impl<S: EventSink> Engine<S> {
    /// Creates an engine whose state transitions stream into `sink`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::new`].
    pub fn with_sink(
        alloc: impl Into<AnyAllocator>,
        sched: SchedCosts,
        policy: UnloadPolicyKind,
        workload: Workload,
        opts: SimOptions,
        sink: S,
    ) -> Result<Self, String> {
        let alloc = alloc.into();
        opts.validate()?;
        for t in &workload.threads {
            if !alloc.can_ever_fit(t.regs_needed) {
                return Err(format!(
                    "thread {} needs {} registers, which allocator `{}` can never satisfy",
                    t.id,
                    t.regs_needed,
                    alloc.strategy_name()
                ));
            }
        }
        let arena = ThreadArena::new(&workload.threads);
        let unload_cost =
            workload.threads.iter().map(|t| sched.unload_cost(t.regs_needed)).collect();
        let supply = (0..arena.len()).collect();
        let rng = SmallRng::seed_from_u64(workload.seed);
        let timers = TimerRing::for_mean_latency(workload.latency.mean());
        let checkpoint = opts.checkpoint_interval;
        let trim = opts.transient_trim;
        Ok(Engine {
            alloc_costs: alloc.costs(),
            alloc,
            sched,
            governor: UnloadGovernor::with_capacity(policy, arena.len()),
            workload,
            opts,
            rng,
            arena,
            unload_cost,
            ring: ReadyRing::new(),
            supply,
            timers,
            alloc_blocked_for: None,
            now: 0,
            stats: SimStats { transient_trim: trim, ..SimStats::default() },
            cost: [0; 9],
            resident_integral: 0,
            next_checkpoint: checkpoint,
            checkpoint_stride: 1,
            last_pressure: 0,
            started: false,
            sink,
        })
    }

    /// Runs to completion (or the cycle horizon) and returns the statistics.
    pub fn run(self) -> SimStats {
        self.run_with_sink().0
    }

    /// Runs like [`Engine::run`] and additionally hands back the sink, so a
    /// recording sink's event stream survives the run. The simulated
    /// statistics are identical to `run()`'s for any sink: emission never
    /// touches engine state.
    pub fn run_with_sink(mut self) -> (SimStats, S) {
        self.advance(u64::MAX);
        self.finish()
    }

    /// Advances the simulation until it is over or the clock reaches
    /// `pause_at`, whichever comes first.
    ///
    /// Returns `true` when the run is over (all threads complete or the
    /// cycle horizon hit) — call [`Engine::finish`] to collect statistics.
    /// Returns `false` when the engine paused with work remaining; the pause
    /// lands on the first scheduling boundary at or after `pause_at` (a
    /// charge can overshoot it), which is exactly a [`Engine::snapshot`]
    /// point. Calling `advance` again continues the run bit-exactly: the
    /// resumed schedule, statistics, and event stream are identical to an
    /// uninterrupted run's.
    pub fn advance(&mut self, pause_at: u64) -> bool {
        if !self.started {
            self.started = true;
            self.emit(EventKind::RunStart {
                threads: self.arena.len(),
                checkpoint_interval: self.opts.checkpoint_interval,
                checkpoint_cap: self.opts.checkpoint_cap,
                transient_trim: self.opts.transient_trim,
            });
        }
        loop {
            self.drain_events();
            if !self.supply.is_empty() {
                self.last_pressure = self.now;
            }
            if self.stats.completed_threads == self.arena.len() {
                return true;
            }
            if self.now >= self.opts.max_cycles {
                return true;
            }
            if self.now >= pause_at {
                return false;
            }
            if let Some(tid) = self.dispatch_ready() {
                self.run_thread(tid);
                continue;
            }
            match self.try_load() {
                LoadOutcome::Loaded => continue,
                LoadOutcome::NeedSpace => {
                    // Register pressure: a runnable thread is waiting and the
                    // allocator cannot serve it. With an unloading policy,
                    // spin over the blocked residents (two-phase); the spin
                    // charges advance time until an eviction or a wakeup.
                    if self.spin_sweep() {
                        continue;
                    }
                }
                LoadOutcome::NothingToLoad => {}
            }
            if !self.idle_until_next_event() {
                return true;
            }
        }
    }

    /// Finalizes a run [`Engine::advance`] reported as over: folds the cost
    /// accumulators into the named statistics fields, emits `RunEnd`, and
    /// hands back the statistics with the sink.
    pub fn finish(mut self) -> (SimStats, S) {
        let [busy, switch, spin, alloc, dealloc, load, unload, queue, idle] = self.cost;
        self.stats.busy_cycles = busy;
        self.stats.switch_cycles = switch;
        self.stats.spin_cycles = spin;
        self.stats.alloc_cycles = alloc;
        self.stats.dealloc_cycles = dealloc;
        self.stats.load_cycles = load;
        self.stats.unload_cycles = unload;
        self.stats.queue_cycles = queue;
        self.stats.idle_cycles = idle;
        self.stats.total_cycles = self.now;
        self.stats.avg_resident = if self.now == 0 {
            0.0
        } else {
            self.resident_integral as f64 / self.now as f64
        };
        // The supply only "drained" if the run actually consumed it. When the
        // cycle horizon stops a run with unstarted threads still queued, the
        // saturated phase never ended: report None so efficiency() falls back
        // to the full horizon instead of clamping to a bogus early timestamp.
        self.stats.supply_drained_at = if self.supply.is_empty() {
            Some(self.last_pressure)
        } else {
            None
        };
        self.emit(EventKind::RunEnd {
            total_cycles: self.stats.total_cycles,
            supply_drained_at: self.stats.supply_drained_at,
        });
        (self.stats, self.sink)
    }

    /// Runs like [`Engine::run`] while timing the host-side wall clock.
    ///
    /// The simulated statistics are identical to `run()`'s; only the
    /// measurement wrapper differs, so traced and untraced runs of the same
    /// seeded configuration stay bit-identical.
    pub fn run_traced(self) -> TracedRun {
        let start = std::time::Instant::now();
        let stats = self.run();
        let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        TracedRun { stats, wall_nanos }
    }

    /// The current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The engine's event sink — lets a caller inspect events captured up
    /// to a pause without consuming the engine.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the event sink, so a paused caller can drain a
    /// recording sink's compared prefix (the divergence comparator's
    /// memory bound) without consuming the engine. The engine never reads
    /// its sink, so no mutation here can perturb the simulation.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Captures the engine's complete state at the current cycle boundary.
    ///
    /// Meaningful at construction time or wherever [`Engine::advance`]
    /// paused; the capture is pure (the engine is untouched) and total —
    /// restoring it reproduces the remaining run bit-exactly, including the
    /// RNG stream, timer wheel pop order, ready-ring rotation, and every
    /// statistics accumulator.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            code_version: crate::CODE_VERSION,
            alloc: self.alloc.clone(),
            sched: self.sched,
            governor: self.governor.clone(),
            workload: self.workload.clone(),
            opts: self.opts.clone(),
            rng: self.rng.to_state(),
            arena: self.arena.clone(),
            unload_cost: self.unload_cost.clone(),
            ring: self.ring.clone(),
            supply: self.supply.iter().copied().collect(),
            timer_shift: self.timers.shift(),
            timers: self.timers.entries(),
            alloc_blocked_for: self.alloc_blocked_for,
            now: self.now,
            stats: self.stats.clone(),
            cost: self.cost,
            resident_integral_hi: (self.resident_integral >> 64) as u64,
            resident_integral_lo: self.resident_integral as u64,
            next_checkpoint: self.next_checkpoint,
            checkpoint_stride: self.checkpoint_stride,
            last_pressure: self.last_pressure,
            started: self.started,
        }
    }

    /// Rebuilds an engine from a snapshot so that [`Engine::advance`] picks
    /// up exactly where the captured engine paused.
    ///
    /// The sink starts fresh: events emitted before the snapshot live with
    /// whoever captured them, and the resumed stream continues from the
    /// pause point (no duplicate `RunStart`), so pre-pause and post-resume
    /// events concatenate into the uninterrupted run's stream.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::SchemaMismatch`]/[`SnapshotError::CodeMismatch`]
    /// when the snapshot comes from a different format or simulator
    /// revision, [`SnapshotError::Invalid`] when its state is internally
    /// inconsistent (truncated arrays, timers waking in the past, options
    /// that no longer validate). Callers degrade to recompute-from-zero.
    pub fn restore_with_sink(snap: &EngineSnapshot, sink: S) -> Result<Self, SnapshotError> {
        snap.check_versions()?;
        snap.validate().map_err(SnapshotError::Invalid)?;
        let timers = TimerRing::from_entries(snap.timer_shift, snap.now, &snap.timers)
            .map_err(SnapshotError::Invalid)?;
        Ok(Engine {
            alloc_costs: snap.alloc.costs(),
            alloc: snap.alloc.clone(),
            sched: snap.sched,
            governor: snap.governor.clone(),
            workload: snap.workload.clone(),
            opts: snap.opts.clone(),
            rng: SmallRng::from_state(snap.rng),
            arena: snap.arena.clone(),
            unload_cost: snap.unload_cost.clone(),
            ring: snap.ring.clone(),
            supply: snap.supply.iter().copied().collect(),
            timers,
            alloc_blocked_for: snap.alloc_blocked_for,
            now: snap.now,
            stats: snap.stats.clone(),
            cost: snap.cost,
            resident_integral: (u128::from(snap.resident_integral_hi) << 64)
                | u128::from(snap.resident_integral_lo),
            next_checkpoint: snap.next_checkpoint,
            checkpoint_stride: snap.checkpoint_stride,
            last_pressure: snap.last_pressure,
            started: snap.started,
            sink,
        })
    }

    /// Emits a cycle-stamped event when the sink is listening. The whole
    /// call — including construction of `kind` at every call site, which is
    /// guarded by the same `enabled()` test — folds away for [`NullSink`].
    fn emit(&mut self, kind: EventKind) {
        if self.sink.enabled() {
            self.sink.emit(Event { cycle: self.now, kind });
        }
    }

    /// Charges `dt` cycles to `bucket` on behalf of `who`, advancing time
    /// and bookkeeping. The emitted charge is stamped at the *pre-charge*
    /// cycle and carries the pre-charge residency (exactly what the
    /// resident integral accrues), making the stream fully self-accounting:
    /// consecutive charges tile the timeline with no gaps or overlaps.
    fn spend(&mut self, dt: u64, bucket: CostBucket, who: Option<usize>) {
        if dt == 0 {
            return;
        }
        if self.sink.enabled() {
            let kind = EventKind::Charge {
                bucket,
                cycles: dt,
                resident: self.ring.len(),
                thread: who,
            };
            self.sink.emit(Event { cycle: self.now, kind });
        }
        self.now += dt;
        self.resident_integral += self.ring.len() as u128 * u128::from(dt);
        // Branchless: `CostBucket`'s discriminants are its `SimStats`
        // declaration order, so the bucket is the index.
        self.cost[bucket as usize] += dt;
        while self.now >= self.next_checkpoint {
            self.stats.checkpoints.push((self.now, self.cost[CostBucket::Busy as usize]));
            self.next_checkpoint += self.opts.checkpoint_interval * self.checkpoint_stride;
            if self.stats.checkpoints.len() >= self.opts.checkpoint_cap {
                decimate_checkpoints(&mut self.stats.checkpoints);
                self.checkpoint_stride *= 2;
            }
        }
    }

    /// Applies every fault completion that has come due.
    fn drain_events(&mut self) {
        while let Some((_, tid)) = self.timers.pop_due(self.now) {
            match self.arena.phase[tid] {
                Phase::ResidentBlocked { wake: w } if w <= self.now => {
                    self.arena.phase[tid] = Phase::ResidentReady;
                    self.governor.clear(tid);
                    self.emit(EventKind::ThreadResume { thread: tid });
                }
                Phase::BlockedUnloaded { wake: w } if w <= self.now => {
                    self.arena.phase[tid] = Phase::ReadyUnloaded;
                    self.supply.push_back(tid);
                    self.emit(EventKind::ThreadRequeue { thread: tid });
                }
                // Stale event (the thread was unloaded and re-queued, or
                // already handled); each fault pushes exactly one event, so
                // mismatches are ignorable.
                _ => {}
            }
        }
    }

    /// Finds and switches to the next runnable resident context in
    /// `NextRRM` ring order, for a single context-switch charge `S`.
    ///
    /// `S` already differs between the experiment families (6 for cache, 8
    /// for synchronization — the extra two cycles covering the unloading
    /// policy's bookkeeping), so dispatch itself is charged identically.
    fn dispatch_ready(&mut self) -> Option<usize> {
        let now = self.now;
        let arena = &self.arena;
        let (hops, tid) =
            self.ring.sweep().enumerate().find(|&(_, t)| arena.is_ready_at(t, now))?;
        self.ring.focus(tid);
        self.emit(EventKind::SwitchTo { thread: tid, hops });
        self.spend(u64::from(self.sched.context_switch), CostBucket::Switch, Some(tid));
        self.arena.phase[tid] = Phase::ResidentReady;
        self.governor.clear(tid);
        Some(tid)
    }

    /// One spinning pass over the blocked residents, made only under
    /// register pressure: each visit is a failed resume attempt costing `S`,
    /// feeding the two-phase competitive policy. Stops early when a context
    /// turns out to have woken (the next loop iteration dispatches it) or
    /// when the policy evicts one (the next iteration retries allocation).
    ///
    /// Returns whether progress is possible without idling (always true for
    /// a non-`Never` policy with blocked residents; spinning itself advances
    /// time, so the loop converges).
    fn spin_sweep(&mut self) -> bool {
        if self.governor.kind() == UnloadPolicyKind::Never {
            return false;
        }
        let n = self.ring.len();
        if n == 0 {
            return false;
        }
        let s = u64::from(self.sched.context_switch);
        // Walk the sweep by index: the ring only mutates on unload, which
        // returns immediately, so positions stay valid — and the walk
        // allocates nothing.
        for i in 0..n {
            let tid = self.ring.nth_in_sweep(i);
            if self.arena.is_ready_at(tid, self.now) {
                return true; // a wakeup beat the sweep; dispatch it instead
            }
            self.spend(s, CostBucket::Spin, Some(tid));
            let unload_cost = self.unload_cost[tid];
            let decision = self.governor.failed_attempt(tid, s, unload_cost);
            if self.sink.enabled() {
                let accumulated = self.governor.accumulated(tid);
                let budget = self.governor.spin_budget(unload_cost).unwrap_or(0);
                self.emit(EventKind::SpinStep { thread: tid, accumulated, budget });
            }
            if decision == UnloadDecision::Unload {
                self.unload(tid);
                return true;
            }
        }
        true
    }

    /// Unloads a blocked resident context, freeing its registers.
    fn unload(&mut self, tid: usize) {
        let regs = self.arena.regs_needed[tid];
        self.spend(self.unload_cost[tid], CostBucket::Unload, Some(tid));
        self.spend(u64::from(self.sched.queue_op), CostBucket::Queue, Some(tid));
        self.spend(u64::from(self.alloc_costs.dealloc), CostBucket::Dealloc, Some(tid));
        let ctx = self.arena.ctx[tid].take().expect("resident thread has a context");
        let base = ctx.base();
        self.alloc.dealloc(ctx).expect("live context deallocates");
        self.alloc_blocked_for = None;
        self.ring.remove(tid);
        self.governor.clear(tid);
        self.stats.unloads += 1;
        self.emit(EventKind::ContextUnload { thread: tid, regs, base, resident: self.ring.len() });
        let wake = match self.arena.phase[tid] {
            Phase::ResidentBlocked { wake } => wake,
            other => unreachable!("unloading a non-blocked context: {other:?}"),
        };
        if wake <= self.now {
            self.arena.phase[tid] = Phase::ReadyUnloaded;
            self.supply.push_back(tid);
            self.emit(EventKind::ThreadRequeue { thread: tid });
        } else {
            self.arena.phase[tid] = Phase::BlockedUnloaded { wake };
        }
    }

    /// Tries to allocate and load the thread at the head of the software
    /// queue.
    ///
    /// Loading is *lazy*: it happens only when no resident context is ready,
    /// as in a runtime whose idle/scheduler loop admits new threads. A
    /// saturated rotation therefore never grows its resident set — harmless
    /// for throughput (saturation efficiency is independent of N) but worth
    /// knowing when interpreting `avg_resident` on saturated workloads.
    fn try_load(&mut self) -> LoadOutcome {
        let Some(&tid) = self.supply.front() else {
            return LoadOutcome::NothingToLoad;
        };
        if let Some(limit) = self.opts.resident_limit {
            if self.ring.len() >= limit {
                return LoadOutcome::NeedSpace;
            }
        }
        // A failed allocation for this head thread cannot start succeeding
        // until some context is deallocated; don't re-charge the attempt.
        if self.alloc_blocked_for == Some(tid) {
            return LoadOutcome::NeedSpace;
        }
        let regs = self.arena.regs_needed[tid];
        let costs = self.alloc_costs;
        match self.alloc.alloc(regs) {
            Some(ctx) => {
                let first_time = matches!(self.arena.phase[tid], Phase::Unstarted);
                let base = ctx.base();
                self.emit(EventKind::AllocSuccess { thread: tid, regs });
                self.spend(u64::from(costs.alloc_success), CostBucket::Alloc, Some(tid));
                self.spend(u64::from(self.sched.queue_op), CostBucket::Queue, Some(tid));
                self.spend(self.sched.load_cost(regs), CostBucket::Load, Some(tid));
                self.supply.pop_front();
                self.arena.ctx[tid] = Some(ctx);
                self.arena.phase[tid] = Phase::ResidentReady;
                self.ring.insert(tid);
                self.stats.allocs += 1;
                self.stats.loads += 1;
                self.stats.max_resident = self.stats.max_resident.max(self.ring.len());
                if first_time {
                    self.emit(EventKind::ThreadSpawn { thread: tid });
                }
                self.emit(EventKind::ContextLoad {
                    thread: tid,
                    regs,
                    base,
                    resident: self.ring.len(),
                });
                LoadOutcome::Loaded
            }
            None => {
                self.emit(EventKind::AllocFailure { thread: tid, regs });
                self.spend(u64::from(costs.alloc_failure), CostBucket::Alloc, Some(tid));
                self.stats.alloc_failures += 1;
                self.alloc_blocked_for = Some(tid);
                LoadOutcome::NeedSpace
            }
        }
    }

    /// Runs the dispatched thread until its next fault or completion.
    fn run_thread(&mut self, tid: usize) {
        let mut run = self.workload.run_length.sample(&mut self.rng);
        if let Some(intf) = self.opts.interference {
            run = intf.scale_run(run, self.ring.len());
        }
        let run = run.min(self.arena.remaining[tid]);
        self.spend(run, CostBucket::Busy, Some(tid));
        self.arena.remaining[tid] -= run;
        if self.arena.remaining[tid] == 0 {
            self.complete(tid);
        } else {
            let latency = self.workload.latency.sample(&mut self.rng);
            let wake = self.now + latency;
            self.arena.phase[tid] = Phase::ResidentBlocked { wake };
            self.timers.push(self.now, wake, tid);
            self.stats.faults += 1;
            self.emit(EventKind::Fault { thread: tid, latency, wake });
        }
    }

    /// Retires a completed thread, freeing its context.
    fn complete(&mut self, tid: usize) {
        self.spend(u64::from(self.alloc_costs.dealloc), CostBucket::Dealloc, Some(tid));
        let ctx = self.arena.ctx[tid].take().expect("running thread has a context");
        self.alloc.dealloc(ctx).expect("live context deallocates");
        self.alloc_blocked_for = None;
        self.ring.remove(tid);
        self.governor.clear(tid);
        self.arena.phase[tid] = Phase::Done;
        self.stats.completed_threads += 1;
        self.stats.completions.push((tid, self.now));
        self.emit(EventKind::ThreadComplete { thread: tid });
    }

    /// Advances time to the next fault completion. Returns `false` when no
    /// event is pending (which, given the loop's invariants, means all
    /// remaining work is unreachable — it cannot happen on a valid setup).
    fn idle_until_next_event(&mut self) -> bool {
        match self.timers.next_wake(self.now) {
            Some(wake) if wake > self.now => {
                let dt = wake - self.now;
                self.emit(EventKind::IdleStart { until: wake });
                self.spend(dt, CostBucket::Idle, None);
                self.emit(EventKind::IdleEnd);
                true
            }
            Some(_) => true, // due event; the next drain applies it
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_alloc::{BitmapAllocator, FixedSlots};
    use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

    fn flexible(file: u32) -> AnyAllocator {
        BitmapAllocator::new(file).unwrap().into()
    }

    fn fixed(file: u32) -> AnyAllocator {
        FixedSlots::new(file).unwrap().into()
    }

    fn cache_engine(
        alloc: AnyAllocator,
        threads: usize,
        r: f64,
        l: u64,
        work: u64,
    ) -> Engine {
        let w = WorkloadBuilder::new()
            .threads(threads)
            .run_length(Dist::Geometric { mean: r })
            .latency(Dist::Constant(l))
            .context_size(ContextSizeDist::PAPER_UNIFORM)
            .work_per_thread(work)
            .seed(42)
            .build()
            .unwrap();
        Engine::new(
            alloc,
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            SimOptions::cache_experiments(),
        )
        .unwrap()
    }

    #[test]
    fn completes_all_threads_and_accounts_every_cycle() {
        let stats = cache_engine(flexible(128), 16, 16.0, 100, 5_000).run();
        assert_eq!(stats.completed_threads, 16);
        assert_eq!(stats.accounted_cycles(), stats.total_cycles);
        assert_eq!(stats.busy_cycles, 16 * 5_000);
        assert!(stats.efficiency() > 0.0 && stats.efficiency() <= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = cache_engine(flexible(128), 8, 16.0, 100, 5_000).run();
        let b = cache_engine(flexible(128), 8, 16.0, 100, 5_000).run();
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let plain = cache_engine(fixed(128), 8, 16.0, 100, 5_000).run();
        let traced = cache_engine(fixed(128), 8, 16.0, 100, 5_000).run_traced();
        assert_eq!(traced.stats, plain);
    }

    #[test]
    fn engine_is_send() {
        // The sweep runner moves whole engines (boxed allocator included)
        // onto worker threads; keep that property explicit.
        fn assert_send<T: Send>(_: &T) {}
        let e = cache_engine(flexible(128), 4, 16.0, 100, 1_000);
        assert_send(&e);
    }

    #[test]
    fn single_thread_efficiency_matches_analytics() {
        // One thread, deterministic run length: steady-state cycle is
        // S + R + (L - R... ) — precisely: switch 6, run 100, then idle
        // until wake at fault+100: the fault latency overlaps nothing, so
        // period = S + R + L and efficiency = R / (R + S + L).
        let w = WorkloadBuilder::new()
            .threads(1)
            .run_length(Dist::Constant(100))
            .latency(Dist::Constant(50))
            .context_size(ContextSizeDist::Fixed(8))
            .work_per_thread(200_000)
            .seed(1)
            .build()
            .unwrap();
        let stats = Engine::new(
            flexible(128),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            SimOptions::cache_experiments(),
        )
        .unwrap()
        .run();
        let expected = 100.0 / (100.0 + 6.0 + 50.0);
        assert!(
            (stats.efficiency() - expected).abs() < 0.01,
            "got {}, expected {expected}",
            stats.efficiency()
        );
    }

    #[test]
    fn saturated_processor_efficiency_is_r_over_r_plus_s() {
        // Plenty of contexts: latency fully hidden, E_sat = R/(R+S).
        let w = WorkloadBuilder::new()
            .threads(12)
            .run_length(Dist::Constant(100))
            .latency(Dist::Constant(50))
            .context_size(ContextSizeDist::Fixed(8))
            .work_per_thread(100_000)
            .seed(1)
            .build()
            .unwrap();
        let stats = Engine::new(
            flexible(128),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            SimOptions::cache_experiments(),
        )
        .unwrap()
        .run();
        let expected = 100.0 / 106.0;
        assert!(
            (stats.efficiency() - expected).abs() < 0.02,
            "got {}, expected {expected}",
            stats.efficiency()
        );
    }

    #[test]
    fn flexible_keeps_more_contexts_resident_than_fixed() {
        // C = 8 on a 128-register file: fixed fits 4 windows, register
        // relocation fits 16 contexts.
        let mk = |alloc: AnyAllocator| {
            let w = WorkloadBuilder::new()
                .threads(32)
                .run_length(Dist::Geometric { mean: 16.0 })
                .latency(Dist::Constant(200))
                .context_size(ContextSizeDist::Fixed(8))
                .work_per_thread(10_000)
                .seed(3)
                .build()
                .unwrap();
            Engine::new(
                alloc,
                SchedCosts::cache_experiments(),
                UnloadPolicyKind::Never,
                w,
                SimOptions::cache_experiments(),
            )
            .unwrap()
            .run()
        };
        let flex = mk(flexible(128));
        let fix = mk(fixed(128));
        assert_eq!(fix.max_resident, 4);
        assert_eq!(flex.max_resident, 16);
        assert!(
            flex.efficiency() > fix.efficiency() * 1.5,
            "flex {} vs fixed {}",
            flex.efficiency(),
            fix.efficiency()
        );
    }

    #[test]
    fn completions_are_recorded_and_spread_fairly() {
        let stats = cache_engine(flexible(128), 16, 16.0, 100, 5_000).run();
        assert_eq!(stats.completions.len(), 16);
        let mut tids: Vec<usize> = stats.completions.iter().map(|&(t, _)| t).collect();
        tids.sort_unstable();
        assert_eq!(tids, (0..16).collect::<Vec<_>>(), "each thread completes once");
        // Cycles are nondecreasing in completion order and end the run.
        let cycles: Vec<u64> = stats.completions.iter().map(|&(_, c)| c).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cycles.last().unwrap(), stats.total_cycles);
        // Round-robin with equal work: concurrent threads finish within a
        // couple of scheduling quanta of each other. With 16 threads on a
        // file holding ~6 contexts, the first wave completes well before
        // the last.
        assert!(cycles[0] < cycles[15]);
    }

    #[test]
    fn never_policy_never_unloads() {
        let stats = cache_engine(flexible(64), 32, 8.0, 500, 2_000).run();
        assert_eq!(stats.unloads, 0);
    }

    #[test]
    fn two_phase_unloads_under_pressure() {
        // Small file, long exponential waits, short runs: the two-phase
        // policy must recycle registers.
        let w = WorkloadBuilder::new()
            .threads(32)
            .run_length(Dist::Geometric { mean: 32.0 })
            .latency(Dist::Exponential { mean: 2000.0 })
            .context_size(ContextSizeDist::PAPER_UNIFORM)
            .work_per_thread(5_000)
            .seed(5)
            .build()
            .unwrap();
        let stats = Engine::new(
            flexible(64),
            SchedCosts::sync_experiments(),
            UnloadPolicyKind::two_phase(),
            w,
            SimOptions::sync_experiments(),
        )
        .unwrap()
        .run();
        assert!(stats.unloads > 0, "expected unloads, got {stats:?}");
        assert!(stats.spin_cycles > 0);
        assert_eq!(stats.completed_threads, 32);
        assert_eq!(stats.accounted_cycles(), stats.total_cycles);
    }

    #[test]
    fn resident_limit_is_respected() {
        let w = WorkloadBuilder::new()
            .threads(16)
            .context_size(ContextSizeDist::Fixed(8))
            .work_per_thread(5_000)
            .seed(2)
            .build()
            .unwrap();
        let opts = SimOptions { resident_limit: Some(3), ..SimOptions::cache_experiments() };
        let stats = Engine::new(
            flexible(128),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            opts,
        )
        .unwrap()
        .run();
        assert!(stats.max_resident <= 3);
        assert_eq!(stats.completed_threads, 16);
    }

    #[test]
    fn cycle_horizon_stops_the_run() {
        let w = WorkloadBuilder::new()
            .threads(4)
            .work_per_thread(1_000_000)
            .seed(2)
            .build()
            .unwrap();
        let opts = SimOptions { max_cycles: 10_000, ..SimOptions::cache_experiments() };
        let stats = Engine::new(
            flexible(128),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            opts,
        )
        .unwrap()
        .run();
        assert!(stats.completed_threads < 4);
        assert!(stats.total_cycles >= 10_000);
        assert!(stats.total_cycles < 20_000, "should stop promptly");
    }

    #[test]
    fn horizon_stop_with_queued_supply_reports_no_drain() {
        // 64 threads with 1M cycles of work each cannot all start within a
        // 10k-cycle horizon on a 64-register file: the supply queue is still
        // populated when the run stops. supply_drained_at must then be None
        // (the saturated phase never ended), so efficiency() measures up to
        // the horizon instead of clamping at a meaningless early timestamp.
        let w = WorkloadBuilder::new()
            .threads(64)
            .work_per_thread(1_000_000)
            .seed(2)
            .build()
            .unwrap();
        let opts = SimOptions { max_cycles: 10_000, ..SimOptions::cache_experiments() };
        let stats = Engine::new(
            flexible(64),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            opts,
        )
        .unwrap()
        .run();
        assert!(stats.completed_threads < 64);
        assert_eq!(stats.supply_drained_at, None);
        // And a run that does consume its whole supply still reports the
        // drain point.
        let done = cache_engine(flexible(128), 4, 16.0, 100, 500).run();
        assert_eq!(done.completed_threads, 4);
        assert!(done.supply_drained_at.is_some());
        assert!(done.supply_drained_at.unwrap() <= done.total_cycles);
    }

    #[test]
    fn oversized_threads_are_rejected_at_construction() {
        let w = WorkloadBuilder::new()
            .threads(2)
            .context_size(ContextSizeDist::Fixed(40))
            .build()
            .unwrap();
        let err = Engine::new(
            fixed(128),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            SimOptions::default(),
        )
        .err()
        .unwrap();
        assert!(err.contains("never satisfy"), "{err}");
    }

    #[test]
    fn interference_reduces_efficiency() {
        let mk = |alpha: Option<f64>| {
            let w = WorkloadBuilder::new()
                .threads(32)
                .run_length(Dist::Geometric { mean: 64.0 })
                .latency(Dist::Constant(100))
                .context_size(ContextSizeDist::Fixed(8))
                .work_per_thread(20_000)
                .seed(4)
                .build()
                .unwrap();
            let opts = SimOptions {
                interference: alpha
                    .map(|a| crate::interference::InterferenceModel::new(a).unwrap()),
                ..SimOptions::cache_experiments()
            };
            Engine::new(
                flexible(128),
                SchedCosts::cache_experiments(),
                UnloadPolicyKind::Never,
                w,
                opts,
            )
            .unwrap()
            .run()
        };
        let clean = mk(None);
        let noisy = mk(Some(0.3));
        assert!(
            noisy.efficiency() < clean.efficiency(),
            "interference should hurt: {} vs {}",
            noisy.efficiency(),
            clean.efficiency()
        );
    }
}
