//! Discrete-event simulator for a coarsely multithreaded processor node.
//!
//! This crate stands in for the authors' modified PROTEUS simulator: it
//! executes the stochastic experiments of the paper's section 3 on a single
//! multiprocessor node. The processor is coarsely multithreaded in the style
//! of APRIL — it switches contexts only when a running thread takes a
//! high-latency fault (remote cache miss or synchronization wait) — and all
//! context management is charged at the cycle costs of the paper's Figure 4,
//! which the ISA-level artifacts in [`rr_runtime`] validate by execution.
//!
//! The engine is deterministic given the workload seed, so every figure in
//! the reproduction is exactly replayable.
//!
//! # Example
//!
//! One Figure 5-style point: flexible (register relocation) contexts on a
//! 128-register file, cache faults of 200 cycles, mean run length 32.
//!
//! ```
//! use rr_sim::{Engine, SimOptions};
//! use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};
//! use rr_alloc::BitmapAllocator;
//! use rr_runtime::{SchedCosts, UnloadPolicyKind};
//!
//! let workload = WorkloadBuilder::new()
//!     .threads(32)
//!     .run_length(Dist::Geometric { mean: 32.0 })
//!     .latency(Dist::Constant(200))
//!     .context_size(ContextSizeDist::PAPER_UNIFORM)
//!     .work_per_thread(20_000)
//!     .seed(7)
//!     .build()?;
//! let engine = Engine::new(
//!     BitmapAllocator::new(128).map_err(|e| e.to_string())?,
//!     SchedCosts::cache_experiments(),
//!     UnloadPolicyKind::Never,
//!     workload,
//!     SimOptions::default(),
//! )?;
//! let stats = engine.run();
//! assert!(stats.efficiency() > 0.0 && stats.efficiency() <= 1.0);
//! # Ok::<(), String>(())
//! ```

pub mod accountant;
pub mod adaptive;
pub mod diverge;
pub mod engine;
pub mod interference;
pub mod metrics;
pub mod options;
pub mod snapshot;
pub mod stats;
pub mod thread;
pub mod timer;
pub mod trace_export;

pub use accountant::EventAccountant;
pub use diverge::{
    compare_legs, DivergeConfig, DivergeOutcome, Divergence, LegReport, StateDelta,
};
pub use engine::{Engine, TracedRun};
pub use interference::InterferenceModel;
pub use metrics::{HistBucket, LogHistogram, MetricsReport, MetricsWindow};
pub use options::{DispatchMode, SimOptions};
pub use snapshot::{EngineSnapshot, SnapshotError, SNAPSHOT_SCHEMA_VERSION};
pub use stats::{decimate_checkpoints, SimStats};
pub use timer::TimerRing;
pub use trace_export::chrome_trace_json;

/// Version of the simulator's *behavior*, independent of the crate version.
///
/// Bump this whenever a change alters the cycle-level results an
/// [`Engine`] produces for a given spec — scheduling order, cost charging,
/// fault timing, RNG consumption. The experiment cache keys every stored
/// result on this constant (via its salt), so bumping it atomically orphans
/// all previously stored points instead of silently serving stale physics.
///
/// Version 2: checkpoint recording gained a decimating reservoir
/// (`SimOptions::checkpoint_cap`). Default-capped runs are byte-identical
/// to version 1, but the *possible* checkpoint shapes differ, so stored
/// records rotate.
pub const CODE_VERSION: u32 = 2;
