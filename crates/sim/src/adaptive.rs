//! Adaptive limiting of resident contexts (paper section 5.2).
//!
//! With cache interference, more resident contexts is not always better:
//! utilization gains compete with shrinking run lengths, "analogous to the
//! problem of controlling the degree of multiprogramming to improve virtual
//! memory performance". The paper lists runtime methods for adaptively
//! limiting residency as ongoing work; this module provides the natural
//! first implementation: measure efficiency at candidate limits and
//! hill-climb to the best one.

use rr_alloc::AnyAllocator;
use rr_runtime::{SchedCosts, UnloadPolicyKind};
use rr_workload::Workload;
use serde::{Deserialize, Serialize};

use crate::engine::Engine;
use crate::options::SimOptions;

/// Efficiency measured at one candidate residency limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LimitSample {
    /// The resident-context cap (`None` = unlimited).
    pub limit: Option<usize>,
    /// Steady-state efficiency at that cap.
    pub efficiency: f64,
    /// Time-averaged resident contexts observed.
    pub avg_resident: f64,
}

/// Sweeps candidate residency limits and returns the per-limit efficiencies
/// plus the best limit found.
///
/// `make_alloc` supplies a fresh allocator per trial (each trial must start
/// from an empty register file).
///
/// # Errors
///
/// Propagates engine-construction failures.
pub fn sweep_limits(
    mut make_alloc: impl FnMut() -> AnyAllocator,
    sched: SchedCosts,
    policy: UnloadPolicyKind,
    workload: &Workload,
    base_opts: &SimOptions,
    limits: &[Option<usize>],
) -> Result<(LimitSample, Vec<LimitSample>), String> {
    if limits.is_empty() {
        return Err("sweep needs at least one candidate limit".into());
    }
    let mut samples = Vec::with_capacity(limits.len());
    for &limit in limits {
        let opts = SimOptions { resident_limit: limit, ..base_opts.clone() };
        let stats =
            Engine::new(make_alloc(), sched, policy, workload.clone(), opts)?.run();
        samples.push(LimitSample {
            limit,
            efficiency: stats.efficiency(),
            avg_resident: stats.avg_resident,
        });
    }
    let best = *samples
        .iter()
        .max_by(|a, b| a.efficiency.total_cmp(&b.efficiency))
        .expect("non-empty");
    Ok((best, samples))
}

/// Hill-climbs the residency limit starting from `start`, doubling or
/// halving toward better efficiency until a local optimum.
///
/// # Errors
///
/// Propagates engine-construction failures.
pub fn hill_climb(
    mut make_alloc: impl FnMut() -> AnyAllocator,
    sched: SchedCosts,
    policy: UnloadPolicyKind,
    workload: &Workload,
    base_opts: &SimOptions,
    start: usize,
) -> Result<(LimitSample, Vec<LimitSample>), String> {
    let mut measure = |limit: usize| -> Result<LimitSample, String> {
        let opts = SimOptions { resident_limit: Some(limit), ..base_opts.clone() };
        let stats =
            Engine::new(make_alloc(), sched, policy, workload.clone(), opts)?.run();
        Ok(LimitSample {
            limit: Some(limit),
            efficiency: stats.efficiency(),
            avg_resident: stats.avg_resident,
        })
    };
    let mut history = Vec::new();
    let mut current = measure(start.max(1))?;
    history.push(current);
    loop {
        let here = current.limit.expect("hill climb always uses Some");
        let candidates = [here / 2, here * 2];
        let mut improved = false;
        for cand in candidates {
            if cand == 0 || history.iter().any(|s| s.limit == Some(cand)) {
                continue;
            }
            let s = measure(cand)?;
            history.push(s);
            if s.efficiency > current.efficiency {
                current = s;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Ok((current, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceModel;
    use rr_alloc::BitmapAllocator;
    use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

    fn workload() -> Workload {
        WorkloadBuilder::new()
            .threads(32)
            .run_length(Dist::Geometric { mean: 64.0 })
            // Latency short enough that a modest number of contexts
            // saturates the processor; beyond that, interference-shortened
            // run lengths only add switch overhead.
            .latency(Dist::Constant(100))
            .context_size(ContextSizeDist::Fixed(8))
            .work_per_thread(20_000)
            .seed(11)
            .build()
            .unwrap()
    }

    fn opts_with_interference(alpha: f64) -> SimOptions {
        SimOptions {
            interference: Some(InterferenceModel::new(alpha).unwrap()),
            ..SimOptions::cache_experiments()
        }
    }

    #[test]
    fn sweep_finds_an_interior_optimum_under_heavy_interference() {
        // With strong interference, unlimited residency is suboptimal.
        let w = workload();
        let opts = opts_with_interference(1.0);
        let limits = [Some(1), Some(2), Some(4), Some(8), Some(16), None];
        let (best, samples) = sweep_limits(
            || BitmapAllocator::new(128).unwrap().into(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            &w,
            &opts,
            &limits,
        )
        .unwrap();
        assert_eq!(samples.len(), limits.len());
        let unlimited = samples.last().unwrap();
        assert!(
            best.efficiency >= unlimited.efficiency,
            "best {best:?} vs unlimited {unlimited:?}"
        );
        assert!(best.limit.is_some() && best.limit.unwrap() < 16, "best {best:?}");
    }

    #[test]
    fn without_interference_more_contexts_never_hurts_much() {
        let w = workload();
        let opts = SimOptions::cache_experiments();
        let (_best, samples) = sweep_limits(
            || BitmapAllocator::new(128).unwrap().into(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            &w,
            &opts,
            &[Some(2), Some(8), None],
        )
        .unwrap();
        assert!(samples[2].efficiency >= samples[0].efficiency - 0.01);
    }

    #[test]
    fn hill_climb_converges() {
        let w = workload();
        let opts = opts_with_interference(1.0);
        let (best, history) = hill_climb(
            || BitmapAllocator::new(128).unwrap().into(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            &w,
            &opts,
            8,
        )
        .unwrap();
        assert!(!history.is_empty());
        assert!(history.iter().all(|s| s.efficiency <= best.efficiency));
    }

    #[test]
    fn empty_sweep_is_an_error() {
        let w = workload();
        let r = sweep_limits(
            || BitmapAllocator::new(128).unwrap().into(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            &w,
            &SimOptions::default(),
            &[],
        );
        assert!(r.is_err());
    }
}
