//! A bucketed timer ring for fault-completion wakeups.
//!
//! The engine's wakeup queue holds at most one outstanding fault per
//! resident context, with wake times clustered around the workload's fault
//! latency. A comparison-based `BinaryHeap` pays `O(log n)` sift work and
//! pointer-chasing per fault; this ring instead hashes each wakeup into one
//! of 64 time buckets sized to the latency distribution, so pushes are an
//! indexed insert into a (nearly always tiny) sorted bucket and pops scan a
//! 64-bit occupancy word. Wakes beyond the 64-bucket window park in an
//! overflow list and migrate in as the window slides.
//!
//! Pop order is exactly the heap's: ascending `(wake, tid)`, ties broken by
//! the lower thread id — the property the cycle-exact golden tests pin.
//!
//! Callers must present a nondecreasing `now` across calls (simulation time
//! never runs backwards) and only push wakes at or after `now`.

/// Number of buckets in the sliding window. One `u64` occupancy word scans
/// the whole window in a couple of instructions.
const BUCKETS: usize = 64;

/// A sliding-window bucket queue of `(wake, tid)` wakeups.
#[derive(Debug)]
pub struct TimerRing {
    /// log2 of the cycle span each bucket covers.
    shift: u32,
    /// `buckets[tick % 64]` holds the wakeups of absolute tick `tick`,
    /// sorted ascending by `(wake, tid)`.
    buckets: [Vec<(u64, usize)>; BUCKETS],
    /// Bit `tick % 64` set iff that bucket is non-empty.
    occupied: u64,
    /// Absolute tick of the window's lower edge; all bucketed entries have
    /// ticks in `[cursor, cursor + 64)` (overdue entries are clamped onto
    /// `cursor`, which preserves pop order — see `place`).
    cursor: u64,
    /// Wakeups beyond the window, unordered.
    overflow: Vec<(u64, usize)>,
    /// Minimum wake in `overflow` (`u64::MAX` when empty).
    overflow_min: u64,
    len: usize,
}

impl TimerRing {
    /// A ring whose buckets each span `2^shift` cycles.
    pub fn new(shift: u32) -> Self {
        TimerRing {
            shift: shift.min(48),
            buckets: std::array::from_fn(|_| Vec::new()),
            occupied: 0,
            cursor: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
        }
    }

    /// A ring sized to a fault-latency distribution: the 64-bucket window
    /// spans roughly four times the mean latency, so the common wakeup
    /// lands in the window and only the distribution's tail overflows.
    pub fn for_mean_latency(mean: f64) -> Self {
        let per_bucket = (mean / 16.0).max(1.0) as u64;
        let mut shift = 0u32;
        while (1u64 << shift) < per_bucket {
            shift += 1;
        }
        TimerRing::new(shift)
    }

    /// Outstanding wakeups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The configured bucket granularity (log2 cycles per bucket).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Every outstanding wakeup, ascending by `(wake, tid)`. Pop order is a
    /// pure function of this multiset and the query time (the heap-model
    /// test pins that), so the entry list — not the window internals — is
    /// what a checkpoint needs to capture.
    pub fn entries(&self) -> Vec<(u64, usize)> {
        let mut out: Vec<(u64, usize)> = self
            .buckets
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// Rebuilds a ring at time `now` from [`TimerRing::entries`] output.
    /// The rebuilt ring pops and reports exactly like the captured one for
    /// every query at or after `now`.
    ///
    /// # Errors
    ///
    /// Rejects entries that wake before `now` — a valid capture taken after
    /// the engine drained its due wakeups can never contain one.
    pub fn from_entries(
        shift: u32,
        now: u64,
        entries: &[(u64, usize)],
    ) -> Result<TimerRing, String> {
        let mut ring = TimerRing::new(shift);
        for &(wake, tid) in entries {
            if wake < now {
                return Err(format!(
                    "timer entry for thread {tid} wakes at {wake}, before restore time {now}"
                ));
            }
            ring.push(now, wake, tid);
        }
        Ok(ring)
    }

    /// Whether no wakeups are outstanding.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset (in ticks from `cursor`) of the first occupied bucket.
    /// Meaningless when `occupied == 0`.
    #[inline]
    fn first_offset(&self) -> u64 {
        u64::from(self.occupied.rotate_right((self.cursor % 64) as u32).trailing_zeros())
    }

    /// Slides the window up to `now`'s tick, never past an occupied bucket,
    /// and migrates any overflow wakeups the window now reaches.
    #[inline]
    fn advance(&mut self, now: u64) {
        let target = now >> self.shift;
        if target > self.cursor {
            self.cursor = if self.occupied == 0 {
                target
            } else {
                target.min(self.cursor + self.first_offset())
            };
            self.migrate();
        }
    }

    /// Pulls overflow wakeups that now fit the window into their buckets.
    fn migrate(&mut self) {
        if self.overflow_min >> self.shift >= self.cursor + BUCKETS as u64 {
            return;
        }
        let pending = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for (wake, tid) in pending {
            if wake >> self.shift < self.cursor + BUCKETS as u64 {
                self.place(wake, tid);
            } else {
                self.overflow_min = self.overflow_min.min(wake);
                self.overflow.push((wake, tid));
            }
        }
    }

    /// Files a wakeup into its bucket, keeping the bucket `(wake, tid)`
    /// sorted. Overdue ticks clamp onto the cursor bucket: they pop before
    /// every in-window tick, and the within-bucket sort keeps them in wake
    /// order, so global pop order is preserved.
    fn place(&mut self, wake: u64, tid: usize) {
        let tick = (wake >> self.shift).max(self.cursor);
        debug_assert!(tick < self.cursor + BUCKETS as u64);
        let b = (tick % BUCKETS as u64) as usize;
        let bucket = &mut self.buckets[b];
        let at = bucket.partition_point(|&e| e < (wake, tid));
        bucket.insert(at, (wake, tid));
        self.occupied |= 1u64 << b;
    }

    /// Schedules `tid` to wake at cycle `wake` (`wake >= now`).
    pub fn push(&mut self, now: u64, wake: u64, tid: usize) {
        debug_assert!(wake >= now, "wake {wake} before now {now}");
        self.advance(now);
        if wake >> self.shift >= self.cursor + BUCKETS as u64 {
            self.overflow_min = self.overflow_min.min(wake);
            self.overflow.push((wake, tid));
        } else {
            self.place(wake, tid);
        }
        self.len += 1;
    }

    /// Removes and returns the earliest wakeup with `wake <= now`, ties
    /// broken by lower tid — exactly a min-heap's pop order.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, usize)> {
        self.advance(now);
        if self.occupied == 0 {
            // Anything overflowed is beyond the window and the window
            // reaches past `now`, so nothing can be due.
            return None;
        }
        let tick = self.cursor + self.first_offset();
        let b = (tick % BUCKETS as u64) as usize;
        let &(wake, tid) = self.buckets[b].first().expect("occupied bit set");
        if wake > now {
            return None;
        }
        self.buckets[b].remove(0);
        if self.buckets[b].is_empty() {
            self.occupied &= !(1u64 << b);
        }
        self.len -= 1;
        Some((wake, tid))
    }

    /// The earliest outstanding wake cycle, due or not.
    pub fn next_wake(&mut self, now: u64) -> Option<u64> {
        self.advance(now);
        if self.occupied != 0 {
            let tick = self.cursor + self.first_offset();
            let b = (tick % BUCKETS as u64) as usize;
            return self.buckets[b].first().map(|&(wake, _)| wake);
        }
        if !self.overflow.is_empty() {
            return Some(self.overflow_min);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_wake_then_tid_order() {
        let mut t = TimerRing::new(3);
        t.push(0, 50, 2);
        t.push(0, 50, 1);
        t.push(0, 10, 9);
        assert_eq!(t.len(), 3);
        assert_eq!(t.pop_due(100), Some((10, 9)));
        assert_eq!(t.pop_due(100), Some((50, 1)));
        assert_eq!(t.pop_due(100), Some((50, 2)));
        assert_eq!(t.pop_due(100), None);
        assert!(t.is_empty());
    }

    #[test]
    fn not_due_is_not_popped() {
        let mut t = TimerRing::new(0);
        t.push(0, 5, 0);
        assert_eq!(t.pop_due(4), None);
        assert_eq!(t.next_wake(4), Some(5));
        assert_eq!(t.pop_due(5), Some((5, 0)));
    }

    #[test]
    fn overflow_migrates_as_time_advances() {
        let mut t = TimerRing::new(0); // 64-cycle window
        t.push(0, 1_000_000, 3);
        t.push(0, 10, 1);
        assert_eq!(t.next_wake(0), Some(10));
        assert_eq!(t.pop_due(10), Some((10, 1)));
        assert_eq!(t.pop_due(10), None);
        // Idle jump straight to the far wake.
        assert_eq!(t.next_wake(10), Some(1_000_000));
        assert_eq!(t.pop_due(1_000_000), Some((1_000_000, 3)));
        assert!(t.is_empty());
    }

    #[test]
    fn same_wake_same_tid_duplicates_survive() {
        // A stale event plus a fresh one can collide exactly; both pop.
        let mut t = TimerRing::new(2);
        t.push(0, 40, 5);
        t.push(0, 40, 5);
        assert_eq!(t.pop_due(40), Some((40, 5)));
        assert_eq!(t.pop_due(40), Some((40, 5)));
        assert_eq!(t.pop_due(40), None);
    }

    /// Model test: against a `BinaryHeap<Reverse<(u64, usize)>>` under a
    /// randomized monotone schedule of pushes, pops, and idle jumps, the
    /// ring must agree on every pop and every next-wake query.
    #[test]
    fn matches_binary_heap_model_under_random_schedules() {
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let shift = rng.gen_range(0..8u32);
            let mut ring = TimerRing::new(shift);
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
            let mut now = 0u64;
            for _ in 0..2000 {
                match rng.gen_range(0..10u32) {
                    0..=4 => {
                        let wake = now + rng.gen_range(0..5000u64);
                        let tid = rng.gen_range(0..32usize);
                        ring.push(now, wake, tid);
                        heap.push(Reverse((wake, tid)));
                    }
                    5..=7 => {
                        let model = match heap.peek() {
                            Some(&Reverse((wake, tid))) if wake <= now => {
                                heap.pop();
                                Some((wake, tid))
                            }
                            _ => None,
                        };
                        assert_eq!(ring.pop_due(now), model, "seed {seed} now {now}");
                    }
                    8 => {
                        let model = heap.peek().map(|&Reverse((wake, _))| wake);
                        assert_eq!(ring.next_wake(now), model, "seed {seed} now {now}");
                    }
                    _ => {
                        // Advance time: small step, or jump to the next wake
                        // (the engine's idle), or a long leap.
                        now += match rng.gen_range(0..3u32) {
                            0 => rng.gen_range(0..50u64),
                            1 => heap
                                .peek()
                                .map(|&Reverse((wake, _))| wake.saturating_sub(now))
                                .unwrap_or(100),
                            _ => rng.gen_range(0..20_000u64),
                        };
                    }
                }
            }
            // Drain both to the end.
            now = now.max(u64::MAX >> 16);
            while let Some(Reverse(expect)) = heap.pop() {
                assert_eq!(ring.pop_due(now), Some(expect), "seed {seed} drain");
            }
            assert_eq!(ring.pop_due(now), None);
            assert!(ring.is_empty());
        }
    }
}
