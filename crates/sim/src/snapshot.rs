//! Bit-exact engine checkpoints.
//!
//! An [`EngineSnapshot`] is the engine's complete dynamic state at a cycle
//! boundary — allocator occupancy, RNG words, outstanding timer wakeups,
//! ready-ring rotation, every statistics accumulator — flattened into plain
//! serializable data. Restoring one rebuilds an engine whose remaining run
//! is indistinguishable from never having paused: same `SimStats`, same
//! event stream, cycle for cycle.
//!
//! Snapshots are *versioned twice*. `schema_version` names this record
//! layout; `code_version` is the simulator's [`crate::CODE_VERSION`], which
//! bumps whenever cycle-level behavior changes. A snapshot from either a
//! different layout or different physics is rejected with a typed
//! [`SnapshotError`] so callers can fall back to recomputing from zero —
//! the restore path never guesses.

use serde::{Deserialize, Serialize};

use rr_alloc::AnyAllocator;
use rr_runtime::{ReadyRing, SchedCosts, UnloadGovernor};
use rr_workload::Workload;

use crate::options::SimOptions;
use crate::stats::SimStats;
use crate::thread::ThreadArena;

/// Version of the [`EngineSnapshot`] record layout. Bump on any field
/// change; restore rejects other versions rather than misinterpreting them.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Why a snapshot could not be restored. Every variant is a signal to
/// degrade to recompute-from-zero, never a reason to crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The record layout version differs from this build's.
    SchemaMismatch {
        /// Version stamped in the record.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The simulator revision differs: resuming would splice two different
    /// cycle-level behaviors into one run.
    CodeMismatch {
        /// `CODE_VERSION` stamped in the record.
        found: u32,
        /// This build's `CODE_VERSION`.
        expected: u32,
    },
    /// The bytes did not parse as a snapshot record at all.
    Decode(String),
    /// The record parsed but its state is internally inconsistent
    /// (truncated arrays, timers waking in the past, invalid options).
    Invalid(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::SchemaMismatch { found, expected } => {
                write!(f, "snapshot schema v{found} (this build reads v{expected})")
            }
            SnapshotError::CodeMismatch { found, expected } => {
                write!(f, "snapshot from simulator v{found} (this build is v{expected})")
            }
            SnapshotError::Decode(why) => write!(f, "snapshot does not decode: {why}"),
            SnapshotError::Invalid(why) => write!(f, "snapshot state invalid: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The engine's complete dynamic state at a cycle boundary; produced by
/// `Engine::snapshot`, consumed by `Engine::restore`.
///
/// `resident_integral` travels as two `u64` halves because the engine
/// accumulates it in a `u128` (it can exceed 2^64 on long runs with many
/// residents) and the serialization layer's numeric domain stops at 64
/// bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Record layout version ([`SNAPSHOT_SCHEMA_VERSION`] at capture).
    pub schema_version: u32,
    /// Simulator revision ([`crate::CODE_VERSION`] at capture).
    pub code_version: u32,
    /// The allocator with its exact occupancy.
    pub alloc: AnyAllocator,
    /// Scheduling cost table.
    pub sched: SchedCosts,
    /// Unload policy plus its accumulated per-thread spin charges.
    pub governor: UnloadGovernor,
    /// The full workload specification (distributions, seed, threads).
    pub workload: Workload,
    /// Simulation options.
    pub opts: SimOptions,
    /// Raw xoshiro256++ state — the exact remaining random stream.
    pub rng: [u64; 4],
    /// Per-thread phase/remaining-work/context columns.
    pub arena: ThreadArena,
    /// Precomputed per-thread unload costs.
    pub unload_cost: Vec<u64>,
    /// Resident contexts in ring order, including the rotation focus.
    pub ring: ReadyRing,
    /// The software supply queue, front first.
    pub supply: Vec<usize>,
    /// The timer ring's bucket granularity.
    pub timer_shift: u32,
    /// Outstanding fault completions as `(wake, tid)`, ascending. The pop
    /// order is a pure function of this multiset, so it is all a rebuild
    /// needs.
    pub timers: Vec<(u64, usize)>,
    /// The head thread whose allocation is known to be blocked, if any.
    pub alloc_blocked_for: Option<usize>,
    /// Current cycle.
    pub now: u64,
    /// Statistics accumulated so far.
    pub stats: SimStats,
    /// Per-bucket cycle accumulators (folded into `stats` at finish).
    pub cost: [u64; 9],
    /// High 64 bits of the residency integral.
    pub resident_integral_hi: u64,
    /// Low 64 bits of the residency integral.
    pub resident_integral_lo: u64,
    /// Next busy-cycle checkpoint boundary.
    pub next_checkpoint: u64,
    /// Current checkpoint decimation stride.
    pub checkpoint_stride: u64,
    /// Last cycle at which the supply queue held a runnable thread.
    pub last_pressure: u64,
    /// Whether `RunStart` has been emitted.
    pub started: bool,
}

/// Just the two version fields, for diagnosing undecodable records: the
/// vendored deserializer reads fields by name and ignores the rest, so this
/// probe decodes against any snapshot-shaped object.
#[derive(Deserialize)]
struct VersionProbe {
    schema_version: u32,
    code_version: u32,
}

impl EngineSnapshot {
    /// Serializes the snapshot as one JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parses and version-checks a snapshot produced by
    /// [`EngineSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::SchemaMismatch`]/[`SnapshotError::CodeMismatch`]
    /// when the versions differ from this build's (reported even when the
    /// rest of the record no longer decodes), [`SnapshotError::Decode`] for
    /// anything else that fails to parse.
    pub fn from_json(text: &str) -> Result<EngineSnapshot, SnapshotError> {
        match serde_json::from_str::<EngineSnapshot>(text) {
            Ok(snap) => {
                snap.check_versions()?;
                Ok(snap)
            }
            Err(err) => {
                if let Ok(probe) = serde_json::from_str::<VersionProbe>(text) {
                    if probe.schema_version != SNAPSHOT_SCHEMA_VERSION {
                        return Err(SnapshotError::SchemaMismatch {
                            found: probe.schema_version,
                            expected: SNAPSHOT_SCHEMA_VERSION,
                        });
                    }
                    if probe.code_version != crate::CODE_VERSION {
                        return Err(SnapshotError::CodeMismatch {
                            found: probe.code_version,
                            expected: crate::CODE_VERSION,
                        });
                    }
                }
                Err(SnapshotError::Decode(err.to_string()))
            }
        }
    }

    /// Rejects snapshots from another record layout or simulator revision.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError::SchemaMismatch`] and
    /// [`SnapshotError::CodeMismatch`].
    pub fn check_versions(&self) -> Result<(), SnapshotError> {
        if self.schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaMismatch {
                found: self.schema_version,
                expected: SNAPSHOT_SCHEMA_VERSION,
            });
        }
        if self.code_version != crate::CODE_VERSION {
            return Err(SnapshotError::CodeMismatch {
                found: self.code_version,
                expected: crate::CODE_VERSION,
            });
        }
        Ok(())
    }

    /// Structural consistency checks, so restore can trust indices and
    /// lengths instead of panicking on a corrupt record deep in the run.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.arena.len();
        if self.workload.threads.len() != n {
            return Err(format!(
                "workload has {} threads but arena has {n}",
                self.workload.threads.len()
            ));
        }
        if self.arena.remaining.len() != n
            || self.arena.regs_needed.len() != n
            || self.arena.ctx.len() != n
        {
            return Err("arena columns have mismatched lengths".to_string());
        }
        if self.unload_cost.len() != n {
            return Err(format!("unload_cost has {} entries, expected {n}", self.unload_cost.len()));
        }
        if let Some(&tid) = self.supply.iter().find(|&&t| t >= n) {
            return Err(format!("supply queue references thread {tid} of {n}"));
        }
        if let Some(&(_, tid)) = self.timers.iter().find(|&&(_, t)| t >= n) {
            return Err(format!("timer entry references thread {tid} of {n}"));
        }
        if self.ring.len() > n {
            return Err(format!("ready ring holds {} entries for {n} threads", self.ring.len()));
        }
        if let Some(tid) = self.alloc_blocked_for {
            if tid >= n {
                return Err(format!("alloc_blocked_for references thread {tid} of {n}"));
            }
        }
        if self.checkpoint_stride == 0 {
            return Err("checkpoint stride of zero".to_string());
        }
        self.opts.validate()?;
        Ok(())
    }
}
