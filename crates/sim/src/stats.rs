//! Cycle accounting and efficiency statistics.

use serde::{Deserialize, Serialize};

/// Complete cycle accounting for one simulation run.
///
/// Every simulated cycle lands in exactly one bucket, so
/// [`SimStats::accounted_cycles`] always equals [`SimStats::total_cycles`] —
/// an invariant the test suite checks after every run.
///
/// # Example
///
/// ```
/// use rr_sim::SimStats;
///
/// let stats = SimStats {
///     total_cycles: 1000,
///     busy_cycles: 600,
///     switch_cycles: 100,
///     idle_cycles: 300,
///     ..SimStats::default()
/// };
/// assert_eq!(stats.efficiency_full(), 0.6);
/// assert_eq!(stats.overhead_cycles(), 100);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Useful work cycles (the numerator of efficiency).
    pub busy_cycles: u64,
    /// Successful context-switch charges (`S` per dispatch).
    pub switch_cycles: u64,
    /// Failed resume attempts during ring walks (`S` each) — the spinning
    /// the two-phase policy bounds.
    pub spin_cycles: u64,
    /// Context allocation charges, successful and failed.
    pub alloc_cycles: u64,
    /// Context deallocation charges.
    pub dealloc_cycles: u64,
    /// Context load charges (registers used + blocking overhead).
    pub load_cycles: u64,
    /// Context unload charges.
    pub unload_cycles: u64,
    /// Thread queue insert/remove charges.
    pub queue_cycles: u64,
    /// Cycles with nothing to run.
    pub idle_cycles: u64,

    /// Faults taken by running threads.
    pub faults: u64,
    /// Successful allocations.
    pub allocs: u64,
    /// Failed allocations.
    pub alloc_failures: u64,
    /// Context loads.
    pub loads: u64,
    /// Context unloads (excluding completions).
    pub unloads: u64,
    /// Threads that ran to completion.
    pub completed_threads: usize,
    /// Peak simultaneously resident contexts.
    pub max_resident: usize,
    /// Time-averaged resident contexts.
    pub avg_resident: f64,

    /// (cycle, cumulative busy) checkpoints for transient exclusion.
    pub checkpoints: Vec<(u64, u64)>,
    /// Fraction trimmed from each end for the steady-state window.
    pub transient_trim: f64,
    /// The last cycle at which the software thread queue held work. After
    /// this point the machine is draining its final residents — the
    /// "completion effects" the paper excludes from its statistics.
    pub supply_drained_at: Option<u64>,
    /// `(thread id, cycle)` completion records, in completion order.
    pub completions: Vec<(usize, u64)>,
}

impl SimStats {
    /// Sum of all accounting buckets; must equal [`Self::total_cycles`].
    pub fn accounted_cycles(&self) -> u64 {
        self.busy_cycles
            + self.switch_cycles
            + self.spin_cycles
            + self.alloc_cycles
            + self.dealloc_cycles
            + self.load_cycles
            + self.unload_cycles
            + self.queue_cycles
            + self.idle_cycles
    }

    /// Whole-run efficiency: useful cycles over all cycles.
    pub fn efficiency_full(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Steady-state efficiency over the middle of the run, excluding
    /// startup and completion transients (the paper's methodology; its
    /// footnote notes full-run statistics "differed only slightly", which
    /// [`Self::efficiency_full`] lets callers confirm).
    ///
    /// The window runs from `transient_trim` of the way in until the
    /// earlier of `1 - transient_trim` and the point where the thread
    /// supply drained (after which residency thins out as the final
    /// threads complete). Degenerate windows fall back to the full-run
    /// figure.
    pub fn efficiency(&self) -> f64 {
        let t = self.total_cycles;
        if t == 0 {
            return 0.0;
        }
        let lo_target = (t as f64 * self.transient_trim) as u64;
        let hi_target = ((t as f64 * (1.0 - self.transient_trim)) as u64)
            .min(self.supply_drained_at.unwrap_or(t));
        let lo = self.checkpoints.iter().find(|(c, _)| *c >= lo_target);
        let hi = self.checkpoints.iter().rev().find(|(c, _)| *c <= hi_target);
        match (lo, hi) {
            (Some(&(t1, b1)), Some(&(t2, b2))) if t2 > t1 => {
                (b2 - b1) as f64 / (t2 - t1) as f64
            }
            _ => self.efficiency_full(),
        }
    }

    /// Total scheduling overhead (everything that is neither useful work nor
    /// idle).
    pub fn overhead_cycles(&self) -> u64 {
        self.accounted_cycles() - self.busy_cycles - self.idle_cycles
    }
}

/// One decimation step of the checkpoint reservoir: drops every second
/// checkpoint (keeping indices 0, 2, 4, …), halving the stored count while
/// preserving even temporal coverage. The engine calls this whenever the
/// vector reaches `SimOptions::checkpoint_cap` and doubles its recording
/// stride, so memory stays bounded on arbitrarily long horizons.
///
/// Because `(cycle, cumulative busy)` pairs are *cumulative*, any surviving
/// pair is still exact — decimation only coarsens the granularity at which
/// [`SimStats::efficiency`] can place its window edges, it never biases the
/// busy-cycle deltas between them.
pub fn decimate_checkpoints(checkpoints: &mut Vec<(u64, u64)>) {
    let mut i = 0usize;
    checkpoints.retain(|_| {
        let keep = i.is_multiple_of(2);
        i += 1;
        keep
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(total: u64, busy: u64, checkpoints: Vec<(u64, u64)>) -> SimStats {
        SimStats {
            total_cycles: total,
            busy_cycles: busy,
            idle_cycles: total - busy,
            checkpoints,
            transient_trim: 0.1,
            ..SimStats::default()
        }
    }

    #[test]
    fn full_efficiency() {
        let s = stats_with(1000, 600, vec![]);
        assert!((s.efficiency_full() - 0.6).abs() < 1e-12);
        assert_eq!(SimStats::default().efficiency_full(), 0.0);
    }

    #[test]
    fn windowed_efficiency_excludes_transients() {
        // Busy only between cycles 200 and 800: the middle window sees a
        // higher efficiency than the full run.
        let checkpoints = (0..=10)
            .map(|i| {
                let t = i * 100;
                let b = t.clamp(200, 800) - 200;
                (t, b)
            })
            .collect();
        let s = stats_with(1000, 600, checkpoints);
        assert!(s.efficiency() > s.efficiency_full());
        assert!((s.efficiency() - 600.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_checkpoints_fall_back_to_full() {
        let s = stats_with(1000, 600, vec![(500, 300)]);
        assert_eq!(s.efficiency(), s.efficiency_full());
    }

    #[test]
    fn decimation_keeps_even_indices() {
        let mut cps: Vec<(u64, u64)> = (0..8).map(|i| (i * 100, i * 10)).collect();
        decimate_checkpoints(&mut cps);
        assert_eq!(cps, vec![(0, 0), (200, 20), (400, 40), (600, 60)]);
        let mut one = vec![(5, 5)];
        decimate_checkpoints(&mut one);
        assert_eq!(one, vec![(5, 5)]);
        let mut none: Vec<(u64, u64)> = vec![];
        decimate_checkpoints(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn efficiency_window_survives_decimation() {
        // Dense checkpoints vs the same run decimated twice: the steady
        // window efficiency stays within one checkpoint of granularity.
        let checkpoints: Vec<(u64, u64)> = (0..=100)
            .map(|i| {
                let t = i * 100;
                let b = t.clamp(2000, 8000) - 2000;
                (t, b)
            })
            .collect();
        let dense = stats_with(10_000, 6000, checkpoints.clone());
        let mut coarse_cps = checkpoints;
        decimate_checkpoints(&mut coarse_cps);
        decimate_checkpoints(&mut coarse_cps);
        let coarse = stats_with(10_000, 6000, coarse_cps);
        assert!(
            (dense.efficiency() - coarse.efficiency()).abs() < 0.06,
            "dense {} vs decimated {}",
            dense.efficiency(),
            coarse.efficiency()
        );
    }

    #[test]
    fn accounting_identity() {
        let mut s = stats_with(100, 40, vec![]);
        s.switch_cycles = 10;
        s.idle_cycles = 50;
        assert_eq!(s.accounted_cycles(), 100);
        assert_eq!(s.overhead_cycles(), 10);
    }
}
