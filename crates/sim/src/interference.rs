//! Cache-interference modelling (paper section 5.2).
//!
//! Threads sharing a cache mostly interfere destructively, raising the miss
//! ratio — i.e. *shortening run lengths* — as the number of resident contexts
//! grows. The paper leaves this as ongoing work; this module implements the
//! simple first-order model the cited studies suggest: the mean run length
//! with `n` resident contexts is
//!
//! ```text
//! R_eff(n) = R / (1 + alpha * (n - 1))
//! ```
//!
//! `alpha` is the marginal miss-rate inflation per additional resident
//! context (0 recovers the interference-free experiments). A floor keeps the
//! run length at least one cycle.

use serde::{Deserialize, Serialize};

/// First-order destructive cache-interference model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Marginal miss-rate inflation per extra resident context.
    pub alpha: f64,
}

impl InterferenceModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` is negative or not finite.
    pub fn new(alpha: f64) -> Result<Self, String> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(format!("interference alpha {alpha} must be finite and >= 0"));
        }
        Ok(InterferenceModel { alpha })
    }

    /// Scales a sampled run length for `residents` co-resident contexts.
    pub fn scale_run(&self, run: u64, residents: usize) -> u64 {
        if residents <= 1 || self.alpha == 0.0 {
            return run.max(1);
        }
        let factor = 1.0 + self.alpha * (residents as f64 - 1.0);
        ((run as f64 / factor).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_is_identity() {
        let m = InterferenceModel::new(0.0).unwrap();
        assert_eq!(m.scale_run(100, 8), 100);
        let m = InterferenceModel::new(0.5).unwrap();
        assert_eq!(m.scale_run(100, 1), 100);
    }

    #[test]
    fn run_lengths_shrink_monotonically_with_residents() {
        let m = InterferenceModel::new(0.25).unwrap();
        let mut prev = u64::MAX;
        for n in 1..=16 {
            let r = m.scale_run(1000, n);
            assert!(r <= prev, "n={n}");
            prev = r;
        }
        assert_eq!(m.scale_run(1000, 5), 500);
    }

    #[test]
    fn floor_of_one_cycle() {
        let m = InterferenceModel::new(10.0).unwrap();
        assert_eq!(m.scale_run(1, 64), 1);
        assert_eq!(m.scale_run(0, 1), 1);
    }

    #[test]
    fn validation() {
        assert!(InterferenceModel::new(-0.1).is_err());
        assert!(InterferenceModel::new(f64::NAN).is_err());
        assert!(InterferenceModel::new(0.3).is_ok());
    }
}
