//! Chrome `trace_event` JSON export of event streams.
//!
//! Emits the subset of the [Trace Event Format] that Perfetto and
//! `chrome://tracing` both render: complete slices (`ph:"X"`) for cycle
//! charges, instants (`ph:"i"`) for faults and allocation failures, and
//! duration begin/end pairs (`ph:"B"`/`"E"`) for context residency. One
//! process per architecture run; within it, track 0 is the scheduler
//! (idle and other unattributed charges), one track per software thread,
//! and one track per hardware context base register showing which thread
//! occupies it — the paper's register file, drawn over time.
//!
//! Timestamps are microseconds in the format; we map **1 simulated cycle to
//! 1 µs**, so Perfetto's "µs" readout is really "cycles" (noted in
//! `otherData`). The JSON is handcrafted (no serializer round-trip): the
//! format is flat and append-only, and a run can emit hundreds of thousands
//! of slices.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use rr_runtime::{Event, EventKind};

/// Offset separating context-track ids from thread-track ids within a
/// process: context base `b` renders as tid `CONTEXT_TRACK_BASE + b`.
const CONTEXT_TRACK_BASE: u64 = 100_000;

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn meta(out: &mut Vec<String>, pid: u32, tid: u64, which: &str, name: &str) {
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(which),
        esc(name)
    ));
}

fn slice(out: &mut Vec<String>, pid: u32, tid: u64, name: &str, ts: u64, dur: u64, args: &str) {
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
         \"dur\":{dur}{}}}",
        esc(name),
        if args.is_empty() { String::new() } else { format!(",\"args\":{{{args}}}") }
    ));
}

fn instant(out: &mut Vec<String>, pid: u32, tid: u64, name: &str, ts: u64, args: &str) {
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts}{}}}",
        esc(name),
        if args.is_empty() { String::new() } else { format!(",\"args\":{{{args}}}") }
    ));
}

/// Renders the events of one process (one architecture run) into `out`.
fn emit_process(out: &mut Vec<String>, pid: u32, name: &str, events: &[Event]) {
    meta(out, pid, 0, "process_name", name);
    meta(out, pid, 0, "thread_name", "scheduler");
    let mut named_threads: Vec<usize> = Vec::new();
    let mut named_contexts: Vec<u16> = Vec::new();
    // thread -> context base, while resident (for closing B/E pairs).
    let mut occupying: Vec<(usize, u16)> = Vec::new();

    for e in events {
        match e.kind {
            EventKind::Charge { bucket, cycles, thread, .. } => {
                let tid = match thread {
                    Some(t) => {
                        if !named_threads.contains(&t) {
                            named_threads.push(t);
                            meta(out, pid, t as u64 + 1, "thread_name", &format!("thread {t}"));
                        }
                        t as u64 + 1
                    }
                    None => 0,
                };
                slice(out, pid, tid, bucket.label(), e.cycle, cycles, "");
            }
            EventKind::Fault { thread, latency, wake } => {
                instant(
                    out,
                    pid,
                    thread as u64 + 1,
                    "fault",
                    e.cycle,
                    &format!("\"latency\":{latency},\"wake\":{wake}"),
                );
            }
            EventKind::AllocFailure { thread, regs } => {
                instant(
                    out,
                    pid,
                    0,
                    "alloc failure",
                    e.cycle,
                    &format!("\"thread\":{thread},\"regs\":{regs}"),
                );
            }
            EventKind::ContextLoad { thread, regs, base, .. } => {
                if !named_contexts.contains(&base) {
                    named_contexts.push(base);
                    meta(
                        out,
                        pid,
                        CONTEXT_TRACK_BASE + u64::from(base),
                        "thread_name",
                        &format!("context @r{base}"),
                    );
                }
                occupying.push((thread, base));
                out.push(format!(
                    "{{\"name\":\"thread {thread}\",\"ph\":\"B\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{},\"args\":{{\"regs\":{regs}}}}}",
                    CONTEXT_TRACK_BASE + u64::from(base),
                    e.cycle
                ));
            }
            EventKind::ContextUnload { thread, base, .. } => {
                occupying.retain(|&(t, _)| t != thread);
                out.push(format!(
                    "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                    CONTEXT_TRACK_BASE + u64::from(base),
                    e.cycle
                ));
            }
            EventKind::ThreadComplete { thread } => {
                // A completing thread's context frees without a
                // ContextUnload (that event is policy eviction only).
                if let Some(pos) = occupying.iter().position(|&(t, _)| t == thread) {
                    let (_, base) = occupying.remove(pos);
                    out.push(format!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                        CONTEXT_TRACK_BASE + u64::from(base),
                        e.cycle
                    ));
                }
                instant(out, pid, thread as u64 + 1, "complete", e.cycle, "");
            }
            EventKind::ThreadSpawn { thread } => {
                instant(out, pid, thread as u64 + 1, "spawn", e.cycle, "");
            }
            EventKind::RunEnd { total_cycles, .. } => {
                // Close any contexts still resident at the horizon.
                for &(_, base) in &occupying {
                    out.push(format!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{},\"ts\":{total_cycles}}}",
                        CONTEXT_TRACK_BASE + u64::from(base)
                    ));
                }
                occupying.clear();
            }
            _ => {}
        }
    }
}

/// Renders one or more processes' event streams as a Chrome
/// `trace_event`-format JSON document. Each `(pid, name, events)` tuple
/// becomes one process group in the Perfetto UI.
pub fn chrome_trace_json(processes: &[(u32, &str, &[Event])]) -> String {
    let mut out: Vec<String> = Vec::new();
    for &(pid, name, events) in processes {
        emit_process(&mut out, pid, name, events);
    }
    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\
         \"time_unit\":\"1 us = 1 simulated cycle\"}}",
    );
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_runtime::CostBucket;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 0,
                kind: EventKind::RunStart {
                    threads: 1,
                    checkpoint_interval: 1024,
                    checkpoint_cap: 65536,
                    transient_trim: 0.1,
                },
            },
            Event { cycle: 0, kind: EventKind::AllocSuccess { thread: 0, regs: 8 } },
            Event { cycle: 0, kind: EventKind::ThreadSpawn { thread: 0 } },
            Event {
                cycle: 0,
                kind: EventKind::ContextLoad { thread: 0, regs: 8, base: 32, resident: 1 },
            },
            Event {
                cycle: 0,
                kind: EventKind::Charge {
                    bucket: CostBucket::Busy,
                    cycles: 40,
                    resident: 1,
                    thread: Some(0),
                },
            },
            Event { cycle: 40, kind: EventKind::Fault { thread: 0, latency: 100, wake: 140 } },
            Event {
                cycle: 40,
                kind: EventKind::Charge {
                    bucket: CostBucket::Idle,
                    cycles: 100,
                    resident: 1,
                    thread: None,
                },
            },
            Event { cycle: 140, kind: EventKind::ThreadComplete { thread: 0 } },
            Event {
                cycle: 140,
                kind: EventKind::RunEnd { total_cycles: 140, supply_drained_at: Some(0) },
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_expected_tracks() {
        let events = sample_events();
        let doc = chrome_trace_json(&[(1, "flexible", &events)]);
        let parsed = serde_json::from_str::<serde::Value>(&doc).unwrap();
        let top = match &parsed {
            serde::Value::Object(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        let trace_events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| match v {
                serde::Value::Array(a) => a,
                other => panic!("traceEvents must be an array, got {other:?}"),
            })
            .unwrap();
        assert!(trace_events.len() >= 8, "got {}", trace_events.len());
        // Process metadata, a busy slice on the thread track, an idle slice
        // on the scheduler track, a fault instant, and a closed context pair.
        let rendered = doc.as_str();
        assert!(rendered.contains("\"process_name\""));
        assert!(rendered.contains("\"flexible\""));
        assert!(rendered.contains("\"context @r32\""));
        assert!(rendered.contains("\"ph\":\"B\""));
        assert!(rendered.contains("\"ph\":\"E\""));
        assert!(rendered.contains("\"fault\""));
        assert!(rendered.contains("\"run\""));
        assert!(rendered.contains("\"idle\""));
    }

    #[test]
    fn context_closes_at_horizon_if_still_resident() {
        let mut events = sample_events();
        // Drop the completion so the context is still resident at RunEnd.
        events.retain(|e| !matches!(e.kind, EventKind::ThreadComplete { .. }));
        let doc = chrome_trace_json(&[(1, "flexible", &events)]);
        serde_json::from_str::<serde::Value>(&doc).unwrap();
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "every context B has a matching E");
    }

    #[test]
    fn two_processes_use_distinct_pids() {
        let events = sample_events();
        let doc = chrome_trace_json(&[(1, "fixed", &events), (2, "flexible", &events)]);
        serde_json::from_str::<serde::Value>(&doc).unwrap();
        assert!(doc.contains("\"pid\":1"));
        assert!(doc.contains("\"pid\":2"));
    }

    #[test]
    fn escaping_handles_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn hostile_process_names_still_produce_valid_json() {
        // A workload name is caller-controlled; quotes, backslashes, and
        // control characters must not break the handcrafted document.
        let events = sample_events();
        let name = "fig\"5\\ case\n\u{1}";
        let doc = chrome_trace_json(&[(1, name, &events)]);
        serde_json::from_str::<serde::Value>(&doc).expect("valid JSON");
        assert!(doc.contains("fig\\\"5\\\\ case\\n\\u0001"), "{doc}");
    }
}
