//! Re-derives [`SimStats`] from the event stream — observability as oracle.
//!
//! The engine's headline invariant, `accounted_cycles == total_cycles`, is a
//! *per-run* check: it can tell you a cycle went missing, not where. The
//! [`EventAccountant`] strengthens it to a *per-event* check by replaying a
//! run's [`Event`] stream through the same bookkeeping the engine performs —
//! bucket sums, the resident-context integral, checkpoint recording with
//! reservoir decimation — and verifying two things:
//!
//! 1. **Contiguity**: every [`EventKind::Charge`] must be stamped exactly
//!    where the previous charge ended. A gap or overlap pinpoints the first
//!    unaccounted cycle and which transition produced it.
//! 2. **Equality**: the finished derivation must equal the engine's own
//!    [`SimStats`] field for field — including the bit pattern of
//!    `avg_resident`, because both sides compute it with identical `u128`
//!    integral arithmetic.
//!
//! Any future change to engine charging that forgets to emit (or emits
//! without charging) breaks the comparison immediately, which is what makes
//! the event layer trustworthy enough to build exporters and metrics on.

use rr_runtime::{CostBucket, Event, EventKind};

use crate::stats::{decimate_checkpoints, SimStats};

/// Replays an event stream into a derived [`SimStats`].
///
/// # Example
///
/// ```
/// use rr_sim::{Engine, EventAccountant, SimOptions};
/// use rr_runtime::{RecordingSink, SchedCosts, UnloadPolicyKind};
/// use rr_alloc::BitmapAllocator;
/// use rr_workload::WorkloadBuilder;
///
/// let workload = WorkloadBuilder::new().threads(4).work_per_thread(500).seed(9).build()?;
/// let engine = Engine::with_sink(
///     BitmapAllocator::new(128).map_err(|e| e.to_string())?,
///     SchedCosts::cache_experiments(),
///     UnloadPolicyKind::Never,
///     workload,
///     SimOptions::default(),
///     RecordingSink::new(),
/// )?;
/// let (stats, sink) = engine.run_with_sink();
/// let derived = EventAccountant::replay(sink.events())?;
/// assert_eq!(derived, stats);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventAccountant {
    started: bool,
    ended: bool,
    /// Where the last charge ended; the next charge must start here.
    now: u64,
    stats: SimStats,
    resident_integral: u128,
    next_checkpoint: u64,
    checkpoint_interval: u64,
    checkpoint_cap: usize,
    checkpoint_stride: u64,
}

impl EventAccountant {
    /// A fresh accountant, expecting a stream that opens with
    /// [`EventKind::RunStart`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays a complete stream and returns the derived statistics.
    ///
    /// # Errors
    ///
    /// The first accounting violation, as a human-readable description
    /// naming the offending cycle.
    pub fn replay(events: &[Event]) -> Result<SimStats, String> {
        let mut acct = EventAccountant::new();
        for e in events {
            acct.ingest(e)?;
        }
        acct.finish()
    }

    /// Ingests one event, checking charge contiguity as it goes.
    ///
    /// # Errors
    ///
    /// A description of the violated invariant (a charge not starting where
    /// the previous one ended, events outside the `RunStart`..`RunEnd`
    /// bracket, or a `RunEnd` total disagreeing with the charges seen).
    pub fn ingest(&mut self, event: &Event) -> Result<(), String> {
        if self.ended {
            return Err(format!("event at cycle {} after RunEnd", event.cycle));
        }
        match event.kind {
            EventKind::RunStart {
                threads: _,
                checkpoint_interval,
                checkpoint_cap,
                transient_trim,
            } => {
                if self.started {
                    return Err("duplicate RunStart".into());
                }
                self.started = true;
                self.stats.transient_trim = transient_trim;
                self.checkpoint_interval = checkpoint_interval;
                self.checkpoint_cap = checkpoint_cap;
                self.checkpoint_stride = 1;
                self.next_checkpoint = checkpoint_interval;
                Ok(())
            }
            _ if !self.started => {
                Err(format!("event at cycle {} before RunStart", event.cycle))
            }
            EventKind::Charge { bucket, cycles, resident, thread: _ } => {
                if event.cycle != self.now {
                    return Err(format!(
                        "charge of {cycles} {} cycles stamped at {} but the previous \
                         charge ended at {}: {} unaccounted cycle(s)",
                        bucket.label(),
                        event.cycle,
                        self.now,
                        event.cycle.abs_diff(self.now),
                    ));
                }
                self.now += cycles;
                self.resident_integral += resident as u128 * u128::from(cycles);
                let b = &mut self.stats;
                *match bucket {
                    CostBucket::Busy => &mut b.busy_cycles,
                    CostBucket::Switch => &mut b.switch_cycles,
                    CostBucket::Spin => &mut b.spin_cycles,
                    CostBucket::Alloc => &mut b.alloc_cycles,
                    CostBucket::Dealloc => &mut b.dealloc_cycles,
                    CostBucket::Load => &mut b.load_cycles,
                    CostBucket::Unload => &mut b.unload_cycles,
                    CostBucket::Queue => &mut b.queue_cycles,
                    CostBucket::Idle => &mut b.idle_cycles,
                } += cycles;
                while self.now >= self.next_checkpoint {
                    self.stats.checkpoints.push((self.now, self.stats.busy_cycles));
                    self.next_checkpoint += self.checkpoint_interval * self.checkpoint_stride;
                    if self.stats.checkpoints.len() >= self.checkpoint_cap {
                        decimate_checkpoints(&mut self.stats.checkpoints);
                        self.checkpoint_stride *= 2;
                    }
                }
                Ok(())
            }
            EventKind::Fault { thread: _, latency: _, wake } => {
                if wake < event.cycle {
                    return Err(format!(
                        "fault at cycle {} wakes in the past ({wake})",
                        event.cycle
                    ));
                }
                self.stats.faults += 1;
                Ok(())
            }
            EventKind::AllocSuccess { .. } => {
                self.stats.allocs += 1;
                Ok(())
            }
            EventKind::AllocFailure { .. } => {
                self.stats.alloc_failures += 1;
                Ok(())
            }
            EventKind::ContextLoad { resident, .. } => {
                self.stats.loads += 1;
                self.stats.max_resident = self.stats.max_resident.max(resident);
                Ok(())
            }
            EventKind::ContextUnload { .. } => {
                self.stats.unloads += 1;
                Ok(())
            }
            EventKind::ThreadComplete { thread } => {
                self.stats.completed_threads += 1;
                self.stats.completions.push((thread, event.cycle));
                Ok(())
            }
            EventKind::RunEnd { total_cycles, supply_drained_at } => {
                if total_cycles != self.now {
                    return Err(format!(
                        "RunEnd claims {total_cycles} total cycles but charges sum to {}",
                        self.now
                    ));
                }
                self.ended = true;
                self.stats.total_cycles = total_cycles;
                self.stats.supply_drained_at = supply_drained_at;
                Ok(())
            }
            // Pure annotations: no bucket or counter of their own (the
            // cycles they describe arrive as charges).
            EventKind::SwitchTo { .. }
            | EventKind::ThreadSpawn { .. }
            | EventKind::ThreadResume { .. }
            | EventKind::ThreadRequeue { .. }
            | EventKind::SpinStep { .. }
            | EventKind::IdleStart { .. }
            | EventKind::IdleEnd
            | EventKind::OsCall { .. } => Ok(()),
        }
    }

    /// Completes the derivation.
    ///
    /// # Errors
    ///
    /// When the stream never started or never ended.
    pub fn finish(mut self) -> Result<SimStats, String> {
        if !self.started {
            return Err("empty stream: no RunStart".into());
        }
        if !self.ended {
            return Err("truncated stream: no RunEnd".into());
        }
        // Identical arithmetic to the engine: integer integral, one final
        // division — so the f64 result is bit-equal, not just close.
        self.stats.avg_resident = if self.stats.total_cycles == 0 {
            0.0
        } else {
            self.resident_integral as f64 / self.stats.total_cycles as f64
        };
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_alloc::BitmapAllocator;
    use rr_runtime::{RecordingSink, SchedCosts, UnloadPolicyKind};
    use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

    use crate::engine::Engine;
    use crate::options::SimOptions;

    fn traced_run(threads: usize, policy: UnloadPolicyKind) -> (SimStats, Vec<Event>) {
        let w = WorkloadBuilder::new()
            .threads(threads)
            .run_length(Dist::Geometric { mean: 16.0 })
            .latency(Dist::Exponential { mean: 400.0 })
            .context_size(ContextSizeDist::PAPER_UNIFORM)
            .work_per_thread(3_000)
            .seed(13)
            .build()
            .unwrap();
        let alloc = BitmapAllocator::new(64).unwrap();
        let sched = match policy {
            UnloadPolicyKind::Never => SchedCosts::cache_experiments(),
            _ => SchedCosts::sync_experiments(),
        };
        let opts = match policy {
            UnloadPolicyKind::Never => SimOptions::cache_experiments(),
            _ => SimOptions::sync_experiments(),
        };
        let engine =
            Engine::with_sink(alloc, sched, policy, w, opts, RecordingSink::new()).unwrap();
        let (stats, sink) = engine.run_with_sink();
        (stats, sink.into_events())
    }

    #[test]
    fn replay_matches_engine_stats_exactly() {
        for policy in [UnloadPolicyKind::Never, UnloadPolicyKind::two_phase()] {
            let (stats, events) = traced_run(24, policy);
            let derived = EventAccountant::replay(&events).unwrap();
            assert_eq!(derived, stats, "policy {policy:?}");
            // Including the float bit pattern of the resident average.
            assert_eq!(derived.avg_resident.to_bits(), stats.avg_resident.to_bits());
        }
    }

    #[test]
    fn stream_brackets_are_enforced() {
        let (_, events) = traced_run(4, UnloadPolicyKind::Never);
        // Missing RunStart.
        let err = EventAccountant::replay(&events[1..]).unwrap_err();
        assert!(err.contains("before RunStart"), "{err}");
        // Missing RunEnd.
        let err = EventAccountant::replay(&events[..events.len() - 1]).unwrap_err();
        assert!(err.contains("no RunEnd"), "{err}");
        // Empty stream.
        let err = EventAccountant::replay(&[]).unwrap_err();
        assert!(err.contains("no RunStart"), "{err}");
    }

    #[test]
    fn a_dropped_charge_is_caught_at_the_gap() {
        let (_, events) = traced_run(8, UnloadPolicyKind::Never);
        let victim = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Charge { cycles, .. } if cycles > 0))
            .unwrap();
        let mut broken = events.clone();
        broken.remove(victim);
        let err = EventAccountant::replay(&broken).unwrap_err();
        assert!(
            err.contains("unaccounted cycle") || err.contains("charges sum"),
            "gap must be named: {err}"
        );
    }

    #[test]
    fn a_forged_total_is_caught_at_run_end() {
        let (_, mut events) = traced_run(4, UnloadPolicyKind::Never);
        let last = events.len() - 1;
        if let EventKind::RunEnd { total_cycles, supply_drained_at } = events[last].kind {
            events[last].kind = EventKind::RunEnd {
                total_cycles: total_cycles + 1,
                supply_drained_at,
            };
        } else {
            panic!("stream must end with RunEnd");
        }
        let err = EventAccountant::replay(&events).unwrap_err();
        assert!(err.contains("charges sum"), "{err}");
    }

    #[test]
    fn accountant_decimates_checkpoints_like_the_engine() {
        // A tiny cap forces decimation in both the engine and the replay;
        // equality then proves the accountant's reservoir matches.
        let w = WorkloadBuilder::new()
            .threads(8)
            .work_per_thread(20_000)
            .seed(3)
            .build()
            .unwrap();
        let opts = SimOptions {
            checkpoint_interval: 64,
            checkpoint_cap: 16,
            ..SimOptions::cache_experiments()
        };
        let engine = Engine::with_sink(
            BitmapAllocator::new(128).unwrap(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            opts,
            RecordingSink::new(),
        )
        .unwrap();
        let (stats, sink) = engine.run_with_sink();
        assert!(stats.checkpoints.len() < 16, "cap respected: {}", stats.checkpoints.len());
        let derived = EventAccountant::replay(sink.events()).unwrap();
        assert_eq!(derived.checkpoints, stats.checkpoints);
        assert_eq!(derived, stats);
    }
}
