//! Windowed time-series metrics derived from the event stream.
//!
//! Aggregate efficiency hides dynamics: a run that saturates early and then
//! drains looks identical to one that limps uniformly. This module folds a
//! run's [`Event`] stream into fixed-width time windows — efficiency,
//! overhead, resident-context occupancy, fault counts per window — plus
//! whole-run log-bucketed histograms of actual run lengths and fault
//! latencies ([`LogHistogram`]; local, no dependency). Charges that span a
//! window boundary are split proportionally, so window sums still tile the
//! run exactly.

use serde::{Deserialize, Serialize};

use rr_runtime::{CostBucket, Event, EventKind};

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. 65 buckets cover the whole `u64` range, so
/// recording never saturates or reallocates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Sample count per bucket; index as described above.
    counts: Vec<u64>,
    /// Total samples recorded.
    total: u64,
    /// Sum of all samples (for the mean).
    sum: u64,
    /// Smallest sample seen (`u64::MAX` until the first record).
    min: u64,
    /// Largest sample seen.
    max: u64,
}

/// One non-empty bucket of a [`LogHistogram`], with its value range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Smallest value the bucket covers.
    pub lo: u64,
    /// Largest value the bucket covers.
    pub hi: u64,
    /// Samples that landed in it.
    pub count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { counts: vec![0; 65], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample. The running sum saturates at `u64::MAX` (only
    /// reachable with adversarial inputs far beyond any simulated horizon),
    /// at which point [`Self::mean`] becomes a lower bound.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// The non-empty buckets, in increasing value order.
    pub fn buckets(&self) -> Vec<HistBucket> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &count)| {
                let (lo, hi) = if i == 0 {
                    (0, 0)
                } else {
                    (1u64 << (i - 1), (1u64 << (i - 1)).wrapping_mul(2).wrapping_sub(1))
                };
                HistBucket { lo, hi: if i == 64 { u64::MAX } else { hi }, count }
            })
            .collect()
    }
}

/// Per-window aggregates; every cycle of the window lands in exactly one of
/// `busy + overhead + idle`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsWindow {
    /// Window start cycle (inclusive).
    pub start: u64,
    /// Window end cycle (exclusive; the last window ends at the run total).
    pub end: u64,
    /// Useful-work cycles in the window.
    pub busy: u64,
    /// Scheduling-overhead cycles (switch, spin, alloc, dealloc, load,
    /// unload, queue).
    pub overhead: u64,
    /// Idle cycles.
    pub idle: u64,
    /// Faults taken in the window.
    pub faults: u64,
    /// Context loads in the window.
    pub loads: u64,
    /// Context unloads in the window.
    pub unloads: u64,
    /// Integral of resident contexts over the window's charges, in
    /// context-cycles; divide by the window width for the average.
    pub resident_cycles: u64,
}

impl MetricsWindow {
    fn empty(start: u64, end: u64) -> Self {
        MetricsWindow {
            start,
            end,
            busy: 0,
            overhead: 0,
            idle: 0,
            faults: 0,
            loads: 0,
            unloads: 0,
            resident_cycles: 0,
        }
    }

    /// Window width in cycles.
    pub fn width(&self) -> u64 {
        self.end - self.start
    }

    /// Efficiency within the window: busy over width.
    pub fn efficiency(&self) -> f64 {
        if self.width() == 0 {
            0.0
        } else {
            self.busy as f64 / self.width() as f64
        }
    }

    /// Time-averaged resident contexts within the window.
    pub fn avg_resident(&self) -> f64 {
        if self.width() == 0 {
            0.0
        } else {
            self.resident_cycles as f64 / self.width() as f64
        }
    }
}

/// Windowed metrics plus whole-run histograms for one traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Window width in cycles.
    pub window: u64,
    /// Total cycles of the run the windows tile.
    pub total_cycles: u64,
    /// The windows, in time order; the last may be narrower.
    pub windows: Vec<MetricsWindow>,
    /// Histogram of actual (post-interference, remaining-capped) run
    /// lengths, one sample per busy charge.
    pub run_lengths: LogHistogram,
    /// Histogram of sampled fault latencies.
    pub fault_latencies: LogHistogram,
}

impl MetricsReport {
    /// Builds a report from a run's events. `window` fixes the window width
    /// in cycles; `None` picks `total/64` rounded up to a power of two (at
    /// least 1024), giving roughly 64 windows on any horizon.
    pub fn from_events(events: &[Event], window: Option<u64>) -> Self {
        let total_cycles = events
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::RunEnd { total_cycles, .. } => Some(total_cycles),
                _ => None,
            })
            .unwrap_or_else(|| {
                events
                    .iter()
                    .map(|e| match e.kind {
                        EventKind::Charge { cycles, .. } => e.cycle + cycles,
                        _ => e.cycle,
                    })
                    .max()
                    .unwrap_or(0)
            });
        let window =
            window.unwrap_or_else(|| (total_cycles / 64).next_power_of_two().max(1024));
        let mut report = MetricsReport {
            window,
            total_cycles,
            windows: Vec::new(),
            run_lengths: LogHistogram::new(),
            fault_latencies: LogHistogram::new(),
        };
        for e in events {
            match e.kind {
                EventKind::Charge { bucket, cycles, resident, .. } => {
                    if bucket == CostBucket::Busy {
                        report.run_lengths.record(cycles);
                    }
                    report.add_charge(e.cycle, cycles, bucket, resident);
                }
                EventKind::Fault { latency, .. } => {
                    report.fault_latencies.record(latency);
                    report.window_at(e.cycle).faults += 1;
                }
                EventKind::ContextLoad { .. } => report.window_at(e.cycle).loads += 1,
                EventKind::ContextUnload { .. } => report.window_at(e.cycle).unloads += 1,
                _ => {}
            }
        }
        // Clamp the final window to the run total so widths stay honest.
        if let Some(last) = report.windows.last_mut() {
            last.end = last.end.min(total_cycles.max(last.start + 1));
        }
        report
    }

    /// The window containing `cycle`, growing the vector as needed.
    fn window_at(&mut self, cycle: u64) -> &mut MetricsWindow {
        let idx = (cycle / self.window) as usize;
        while self.windows.len() <= idx {
            let start = self.windows.len() as u64 * self.window;
            self.windows.push(MetricsWindow::empty(start, start + self.window));
        }
        &mut self.windows[idx]
    }

    /// Distributes a charge across the windows it spans, splitting at each
    /// boundary so per-window cycle sums tile the run exactly.
    fn add_charge(&mut self, start: u64, cycles: u64, bucket: CostBucket, resident: usize) {
        let mut at = start;
        let mut left = cycles;
        while left > 0 {
            let w = self.window_at(at);
            let room = w.end - at;
            let take = left.min(room);
            match bucket {
                CostBucket::Busy => w.busy += take,
                CostBucket::Idle => w.idle += take,
                _ => w.overhead += take,
            }
            w.resident_cycles += resident as u64 * take;
            at += take;
            left -= take;
        }
    }

    /// Whole-run efficiency recomputed from the windows (a consistency
    /// handle for tests: must match `busy/total` from `SimStats`).
    pub fn efficiency_from_windows(&self) -> f64 {
        let busy: u64 = self.windows.iter().map(|w| w.busy).sum();
        if self.total_cycles == 0 {
            0.0
        } else {
            busy as f64 / self.total_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_alloc::BitmapAllocator;
    use rr_runtime::{RecordingSink, SchedCosts, UnloadPolicyKind};
    use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

    use crate::engine::Engine;
    use crate::options::SimOptions;
    use crate::stats::SimStats;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.total(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let buckets = h.buckets();
        let zero = buckets.iter().find(|b| b.lo == 0 && b.hi == 0).unwrap();
        assert_eq!(zero.count, 1);
        let b23 = buckets.iter().find(|b| b.lo == 2).unwrap();
        assert_eq!((b23.hi, b23.count), (3, 2)); // 2 and 3
        let b47 = buckets.iter().find(|b| b.lo == 4).unwrap();
        assert_eq!((b47.hi, b47.count), (7, 2)); // 4 and 7
        let top = buckets.last().unwrap();
        assert_eq!(top.hi, u64::MAX);
        assert_eq!(top.count, 1);
        // Every sample is in some bucket.
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 9);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(LogHistogram::new().mean(), 0.0);
        assert_eq!(LogHistogram::new().min(), None);
    }

    fn traced(threads: usize) -> (SimStats, Vec<Event>) {
        let w = WorkloadBuilder::new()
            .threads(threads)
            .run_length(Dist::Geometric { mean: 16.0 })
            .latency(Dist::Constant(200))
            .context_size(ContextSizeDist::PAPER_UNIFORM)
            .work_per_thread(5_000)
            .seed(21)
            .build()
            .unwrap();
        let engine = Engine::with_sink(
            BitmapAllocator::new(128).unwrap(),
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            w,
            SimOptions::cache_experiments(),
            RecordingSink::new(),
        )
        .unwrap();
        let (stats, sink) = engine.run_with_sink();
        (stats, sink.into_events())
    }

    #[test]
    fn windows_tile_the_run_exactly() {
        let (stats, events) = traced(16);
        let report = MetricsReport::from_events(&events, Some(4096));
        // Cycle conservation: window sums equal the stats buckets.
        let busy: u64 = report.windows.iter().map(|w| w.busy).sum();
        let idle: u64 = report.windows.iter().map(|w| w.idle).sum();
        let overhead: u64 = report.windows.iter().map(|w| w.overhead).sum();
        assert_eq!(busy, stats.busy_cycles);
        assert_eq!(idle, stats.idle_cycles);
        assert_eq!(overhead, stats.overhead_cycles());
        assert_eq!(busy + idle + overhead, stats.total_cycles);
        // Count conservation.
        let faults: u64 = report.windows.iter().map(|w| w.faults).sum();
        assert_eq!(faults, stats.faults);
        let loads: u64 = report.windows.iter().map(|w| w.loads).sum();
        assert_eq!(loads, stats.loads);
        // Windows are contiguous and ordered.
        for pair in report.windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!((report.efficiency_from_windows() - stats.efficiency_full()).abs() < 1e-12);
        // Histograms saw every busy charge and every fault.
        assert_eq!(report.fault_latencies.total(), stats.faults);
        assert_eq!(report.fault_latencies.max(), Some(200));
        assert!(report.run_lengths.total() > 0);
    }

    #[test]
    fn auto_window_gives_about_64_windows() {
        let (_, events) = traced(16);
        let report = MetricsReport::from_events(&events, None);
        assert!(report.window >= 1024);
        assert!(report.window.is_power_of_two());
        assert!(report.windows.len() <= 130, "got {}", report.windows.len());
    }

    #[test]
    fn charges_split_across_boundaries() {
        // A synthetic stream: one 100-cycle busy charge spanning a 64-cycle
        // window boundary with 3 residents.
        let events = vec![
            Event {
                cycle: 0,
                kind: EventKind::RunStart {
                    threads: 1,
                    checkpoint_interval: 1024,
                    checkpoint_cap: 65536,
                    transient_trim: 0.1,
                },
            },
            Event {
                cycle: 0,
                kind: EventKind::Charge {
                    bucket: CostBucket::Busy,
                    cycles: 100,
                    resident: 3,
                    thread: Some(0),
                },
            },
            Event {
                cycle: 100,
                kind: EventKind::RunEnd { total_cycles: 100, supply_drained_at: Some(0) },
            },
        ];
        let report = MetricsReport::from_events(&events, Some(64));
        assert_eq!(report.windows.len(), 2);
        assert_eq!(report.windows[0].busy, 64);
        assert_eq!(report.windows[1].busy, 36);
        assert_eq!(report.windows[1].start, 64);
        assert_eq!(report.windows[1].end, 100, "last window clamps to the total");
        assert_eq!(report.windows[0].resident_cycles, 3 * 64);
        assert_eq!(report.windows[0].efficiency(), 1.0);
        assert_eq!(report.windows[0].avg_resident(), 3.0);
    }
}
