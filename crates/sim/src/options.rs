//! Simulation options.

use serde::{Deserialize, Serialize};

use crate::interference::InterferenceModel;

/// How the scheduler finds the next runnable resident context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchMode {
    /// The scheduler knows which resident contexts are ready (a per-context
    /// ready flag set by the memory system, as on APRIL) and switches
    /// straight to one for a single context-switch charge `S`. Used by the
    /// cache-fault experiments (section 3.2, `S` = 6).
    #[default]
    DirectReady,
    /// The scheduler walks the `NextRRM` ring testing each context; every
    /// visit to a still-blocked context costs `S` and counts as a failed
    /// resume attempt for the unloading policy. Used by the synchronization
    /// experiments (section 3.3, `S` = 8, which includes the test-and-branch
    /// bookkeeping). The walk — and its failed-attempt accounting — only
    /// happens under *load pressure* (an unloaded thread is waiting for
    /// registers); with nothing to load, spinning has no opportunity cost
    /// and the processor idle-waits for the next wakeup instead.
    RingWalk,
}

/// Knobs for a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Hard horizon in cycles; the run stops here even if threads remain.
    pub max_cycles: u64,
    /// Scheduler dispatch behaviour.
    pub dispatch: DispatchMode,
    /// Cap on simultaneously resident contexts (`None` = registers are the
    /// only limit). Used by the section 5.2 adaptive-limiting extension.
    pub resident_limit: Option<usize>,
    /// Optional cache-interference model (section 5.2): run lengths shrink
    /// as more contexts share the cache.
    pub interference: Option<InterferenceModel>,
    /// Cycle spacing of the efficiency checkpoints used for transient
    /// exclusion.
    pub checkpoint_interval: u64,
    /// Decimating-reservoir cap on stored checkpoints: when the count
    /// reaches this, every second checkpoint is dropped and the effective
    /// interval doubles, bounding memory on long horizons while keeping
    /// even coverage. The default (65536) is above what any paper-figure
    /// horizon produces, so default runs never decimate.
    pub checkpoint_cap: usize,
    /// Fraction of the run trimmed from each end when computing the
    /// steady-state efficiency (the paper excludes "transient startup and
    /// completion effects").
    pub transient_trim: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: 50_000_000,
            dispatch: DispatchMode::DirectReady,
            resident_limit: None,
            interference: None,
            checkpoint_interval: 1024,
            checkpoint_cap: 65536,
            transient_trim: 0.1,
        }
    }
}

impl SimOptions {
    /// Options for the paper's cache-fault experiments.
    pub fn cache_experiments() -> Self {
        SimOptions { dispatch: DispatchMode::DirectReady, ..Self::default() }
    }

    /// Options for the paper's synchronization-fault experiments.
    pub fn sync_experiments() -> Self {
        SimOptions { dispatch: DispatchMode::RingWalk, ..Self::default() }
    }

    /// Validates option values.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for out-of-range values.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_cycles == 0 {
            return Err("max_cycles must be positive".into());
        }
        if self.checkpoint_interval == 0 {
            return Err("checkpoint_interval must be positive".into());
        }
        if self.checkpoint_cap < 2 {
            return Err(format!(
                "checkpoint_cap {} cannot decimate; need at least 2",
                self.checkpoint_cap
            ));
        }
        if !(0.0..0.5).contains(&self.transient_trim) {
            return Err(format!("transient_trim {} must be in [0, 0.5)", self.transient_trim));
        }
        if self.resident_limit == Some(0) {
            return Err("resident_limit of zero would deadlock".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(SimOptions::default().validate().is_ok());
        assert!(SimOptions::cache_experiments().validate().is_ok());
        assert_eq!(SimOptions::sync_experiments().dispatch, DispatchMode::RingWalk);
    }

    #[test]
    fn bad_options_rejected() {
        let o = SimOptions { max_cycles: 0, ..SimOptions::default() };
        assert!(o.validate().is_err());
        let o = SimOptions { transient_trim: 0.5, ..SimOptions::default() };
        assert!(o.validate().is_err());
        let o = SimOptions { resident_limit: Some(0), ..SimOptions::default() };
        assert!(o.validate().is_err());
        let o = SimOptions { checkpoint_cap: 1, ..SimOptions::default() };
        assert!(o.validate().is_err());
    }
}
