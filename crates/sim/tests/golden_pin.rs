//! Golden pinning of the engine's cycle-exact behavior.
//!
//! These constants were captured from the engine *before* the hot-path
//! restructuring (enum-dispatched allocator, timer ring, struct-of-arrays
//! arenas, branchless cost charging) and pin the optimized engine
//! bit-identical to that capture: for a deterministic set of pseudo-random
//! specs covering both architectures (fixed windows, register relocation)
//! and both fault families (constant-latency cache misses with the
//! never-unload policy, exponential synchronization waits with the
//! two-phase policy), the full `SimStats` and the recorded event stream
//! must hash to exactly the values below.
//!
//! Every run is additionally replayed through the [`EventAccountant`]
//! oracle, so the event stream's self-accounting invariants are enforced
//! alongside the hashes.
//!
//! To regenerate after an *intentional* behavior change (which must also
//! bump `rr_sim::CODE_VERSION`), run with `RR_GOLDEN_PRINT=1` and paste
//! the printed table.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rr_alloc::{AnyAllocator, BitmapAllocator, FixedSlots};
use rr_runtime::{RecordingSink, SchedCosts, UnloadPolicyKind};
use rr_sim::{Engine, EventAccountant, SimOptions};
use rr_workload::{ContextSizeDist, Dist, WorkloadBuilder};

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct GoldenCase {
    fixed: bool,
    sync: bool,
    file_size: u32,
    threads: usize,
    run_mean: f64,
    latency: u64,
    ctx_fixed: u32,
    work: u64,
    seed: u64,
}

/// Deterministic pseudo-random spec set: 12 base scenarios, each expanded
/// over {fixed, flexible} × {cache, sync} = 48 runs.
fn golden_cases() -> Vec<GoldenCase> {
    let mut rng = SmallRng::seed_from_u64(0x5252_4742);
    let mut cases = Vec::new();
    for i in 0..12u64 {
        let file_size = *[64u32, 128, 256].get(rng.gen_range(0..3usize)).unwrap();
        let threads = rng.gen_range(2..24usize);
        let run_mean = rng.gen_range(4.0..96.0f64);
        let latency = rng.gen_range(20..900u64);
        let ctx_fixed = *[4u32, 8, 16, 32].get(rng.gen_range(0..4usize)).unwrap();
        let work = rng.gen_range(500..4000u64);
        let seed = rng.gen_range(0..10_000u64) + i;
        for fixed in [false, true] {
            for sync in [false, true] {
                cases.push(GoldenCase {
                    fixed,
                    sync,
                    file_size,
                    threads,
                    run_mean,
                    latency,
                    ctx_fixed,
                    work,
                    seed,
                });
            }
        }
    }
    cases
}

/// Runs one case with a recording sink and returns the FNV hash of the
/// serialized stats plus event stream, enforcing the replay oracle.
fn run_case(c: &GoldenCase) -> u64 {
    let latency_dist = if c.sync {
        Dist::Exponential { mean: c.latency as f64 }
    } else {
        Dist::Constant(c.latency)
    };
    let workload = WorkloadBuilder::new()
        .threads(c.threads)
        .run_length(Dist::Geometric { mean: c.run_mean })
        .latency(latency_dist)
        .context_size(ContextSizeDist::Fixed(c.ctx_fixed))
        .work_per_thread(c.work)
        .seed(c.seed)
        .build()
        .unwrap();
    let alloc: AnyAllocator = if c.fixed {
        FixedSlots::new(c.file_size).unwrap().into()
    } else {
        BitmapAllocator::new(c.file_size).unwrap().into()
    };
    let (sched, policy, opts) = if c.sync {
        (
            SchedCosts::sync_experiments(),
            UnloadPolicyKind::two_phase(),
            SimOptions { max_cycles: 2_000_000, ..SimOptions::sync_experiments() },
        )
    } else {
        (
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            SimOptions { max_cycles: 2_000_000, ..SimOptions::cache_experiments() },
        )
    };
    let engine =
        Engine::with_sink(alloc, sched, policy, workload, opts, RecordingSink::new()).unwrap();
    let (stats, sink) = engine.run_with_sink();
    let events = sink.into_events();

    // Replay oracle: the event stream must reconstruct the stats exactly,
    // bit-for-bit (including the f64 `avg_resident`).
    let replayed = EventAccountant::replay(&events).expect("event stream self-accounts");
    assert_eq!(replayed, stats, "replay oracle diverged for {c:?}");

    let stats_json = serde_json::to_string(&stats).unwrap();
    let events_json = serde_json::to_string(&events).unwrap();
    let mut buf = Vec::with_capacity(stats_json.len() + events_json.len() + 1);
    buf.extend_from_slice(stats_json.as_bytes());
    buf.push(b'|');
    buf.extend_from_slice(events_json.as_bytes());
    fnv1a(&buf)
}

/// Per-case hashes captured from the pre-optimization engine. Indexed in
/// `golden_cases()` order; one line per (scenario, arch, family) run.
const GOLDEN_HASHES: [u64; 48] = [
    0xac4eed766caa5abf, // case 0: fixed: false, sync: false
    0xcdd65757f8569fcd, // case 1: fixed: false, sync: true
    0x4f1dc2eb94c70717, // case 2: fixed: true, sync: false
    0x92a28856a73f0e53, // case 3: fixed: true, sync: true
    0x05bc7cb019733e57, // case 4: fixed: false, sync: false
    0x81a18d77116aa859, // case 5: fixed: false, sync: true
    0xa0bd7a39d6ff835e, // case 6: fixed: true, sync: false
    0xd99fcfe29b4d2e29, // case 7: fixed: true, sync: true
    0x9b96e0bececb7ae8, // case 8: fixed: false, sync: false
    0xaf9c3c35aeded9c5, // case 9: fixed: false, sync: true
    0xec879efb0cdf4afa, // case 10: fixed: true, sync: false
    0x5d9c6595b8b01aee, // case 11: fixed: true, sync: true
    0x591ae11048ae5430, // case 12: fixed: false, sync: false
    0xe9aa3da1b58f371f, // case 13: fixed: false, sync: true
    0xea11d781e64fd1b2, // case 14: fixed: true, sync: false
    0x160740634782c1cf, // case 15: fixed: true, sync: true
    0x35327f23e830c73b, // case 16: fixed: false, sync: false
    0xb8562aaedd745037, // case 17: fixed: false, sync: true
    0xf7177888a311c0ce, // case 18: fixed: true, sync: false
    0x439cbd492dbf51d3, // case 19: fixed: true, sync: true
    0xcd80764658270e74, // case 20: fixed: false, sync: false
    0x2ba0fdfeda2628e7, // case 21: fixed: false, sync: true
    0xb631786ce1d0b534, // case 22: fixed: true, sync: false
    0xb70e38464b15d5c1, // case 23: fixed: true, sync: true
    0x6bc26dc7d3b1994e, // case 24: fixed: false, sync: false
    0xfe889dbd1ccdf1f5, // case 25: fixed: false, sync: true
    0x11c085ed4ddd2240, // case 26: fixed: true, sync: false
    0xfb74bac2a73a9cde, // case 27: fixed: true, sync: true
    0xba0696e082c9304b, // case 28: fixed: false, sync: false
    0x7a9947c89c45dfb9, // case 29: fixed: false, sync: true
    0x9874ae3d66e50421, // case 30: fixed: true, sync: false
    0x5d3f637433b27921, // case 31: fixed: true, sync: true
    0xcaa2397368176425, // case 32: fixed: false, sync: false
    0x8785fe1f35c378a8, // case 33: fixed: false, sync: true
    0xfcd6ae67ff0cccb8, // case 34: fixed: true, sync: false
    0x30d743f6bec46c11, // case 35: fixed: true, sync: true
    0x78c394228d8c878c, // case 36: fixed: false, sync: false
    0x7156cb3590efb8ea, // case 37: fixed: false, sync: true
    0x433cba7722da1b2a, // case 38: fixed: true, sync: false
    0x40ffb94d4deb09ec, // case 39: fixed: true, sync: true
    0x67c46cdd72de4183, // case 40: fixed: false, sync: false
    0x141ebafd8f2be8b9, // case 41: fixed: false, sync: true
    0x9da1c09f3152734e, // case 42: fixed: true, sync: false
    0x6783d10960d4fc42, // case 43: fixed: true, sync: true
    0x31785a52c7b43a3f, // case 44: fixed: false, sync: false
    0x64fcd5f8b7e06c65, // case 45: fixed: false, sync: true
    0x654a7912d2e21269, // case 46: fixed: true, sync: false
    0x1090b41db60c8ecd, // case 47: fixed: true, sync: true
];

#[test]
fn engine_matches_pre_optimization_capture_bit_for_bit() {
    let cases = golden_cases();
    assert_eq!(cases.len(), GOLDEN_HASHES.len());
    let hashes: Vec<u64> = cases.iter().map(run_case).collect();
    if std::env::var_os("RR_GOLDEN_PRINT").is_some() {
        for (i, h) in hashes.iter().enumerate() {
            println!("    {h:#018x}, // case {i}: {:?}", cases[i]);
        }
    }
    let mut mismatches = Vec::new();
    for (i, (&got, &want)) in hashes.iter().zip(GOLDEN_HASHES.iter()).enumerate() {
        if got != want {
            mismatches.push(format!(
                "case {i} ({:?}): got {got:#018x}, pinned {want:#018x}",
                cases[i]
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "engine diverged from pre-optimization capture:\n{}",
        mismatches.join("\n")
    );
}
