//! Bit-exact snapshot/resume proofs, in the style of `golden_pin.rs` and
//! `proptest_engine.rs`: run-to-N + snapshot + resume-to-M must equal
//! straight run-to-M on every `SimStats` field *and* on the full event
//! stream, with the `EventAccountant` replay oracle agreeing on the spliced
//! stream. The snapshot is pushed through its JSON wire format on every
//! round trip, so these tests cover the serialized record, not just the
//! in-memory struct.

use proptest::prelude::*;

use rr_alloc::{AnyAllocator, BitmapAllocator, FixedSlots};
use rr_runtime::{Event, RecordingSink, SchedCosts, UnloadPolicyKind};
use rr_sim::{
    Engine, EngineSnapshot, EventAccountant, SimOptions, SimStats, SnapshotError,
    SNAPSHOT_SCHEMA_VERSION,
};
use rr_workload::{ContextSizeDist, Dist, Workload, WorkloadBuilder};

#[derive(Debug, Clone)]
struct Scenario {
    file_size: u32,
    fixed: bool,
    sync: bool,
    threads: usize,
    run_mean: f64,
    latency: u64,
    ctx: ContextSizeDist,
    work: u64,
    seed: u64,
}

type EngineParts = (Workload, AnyAllocator, SchedCosts, UnloadPolicyKind, SimOptions);

fn build(s: &Scenario) -> Result<EngineParts, String> {
    let latency_dist = if s.sync {
        Dist::Exponential { mean: s.latency as f64 }
    } else {
        Dist::Constant(s.latency)
    };
    let workload = WorkloadBuilder::new()
        .threads(s.threads)
        .run_length(Dist::Geometric { mean: s.run_mean })
        .latency(latency_dist)
        .context_size(s.ctx)
        .work_per_thread(s.work)
        .seed(s.seed)
        .build()?;
    let alloc: AnyAllocator = if s.fixed {
        FixedSlots::new(s.file_size).map_err(|e| e.to_string())?.into()
    } else {
        BitmapAllocator::new(s.file_size).map_err(|e| e.to_string())?.into()
    };
    let (sched, policy, opts) = if s.sync {
        (
            SchedCosts::sync_experiments(),
            UnloadPolicyKind::two_phase(),
            SimOptions { max_cycles: 3_000_000, ..SimOptions::sync_experiments() },
        )
    } else {
        (
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            SimOptions { max_cycles: 3_000_000, ..SimOptions::cache_experiments() },
        )
    };
    Ok((workload, alloc, sched, policy, opts))
}

fn engine(s: &Scenario) -> Option<Engine<RecordingSink>> {
    let (workload, alloc, sched, policy, opts) = build(s).ok()?;
    Engine::with_sink(alloc, sched, policy, workload, opts, RecordingSink::new()).ok()
}

/// The uninterrupted reference run.
fn straight(s: &Scenario) -> Option<(SimStats, Vec<Event>)> {
    let (stats, sink) = engine(s)?.run_with_sink();
    Some((stats, sink.into_events()))
}

/// Runs with pauses at each cycle in `pauses` (ascending); at every pause
/// the engine is serialized to JSON, dropped, and rebuilt from the parsed
/// snapshot. Returns the final stats and the spliced event stream.
fn resumed(s: &Scenario, pauses: &[u64]) -> Option<(SimStats, Vec<Event>)> {
    let mut eng = engine(s)?;
    let mut events: Vec<Event> = Vec::new();
    let mut over = false;
    for &pause_at in pauses {
        if eng.advance(pause_at) {
            over = true;
            break;
        }
        let snap_json = eng.snapshot().to_json();
        events.extend_from_slice(eng.sink().events());
        drop(eng);
        let snap = EngineSnapshot::from_json(&snap_json).expect("snapshot round-trips");
        eng = Engine::restore_with_sink(&snap, RecordingSink::new())
            .expect("snapshot restores");
    }
    if !over {
        assert!(eng.advance(u64::MAX), "advance(MAX) finishes the run");
    }
    let (stats, sink) = eng.finish();
    events.extend(sink.into_events());
    Some((stats, events))
}

/// Straight and resumed runs must agree bit-for-bit on statistics and on
/// the event stream, and the accountant replay of the spliced stream must
/// reproduce the statistics.
fn assert_resume_exact(s: &Scenario, pauses: &[u64]) {
    let Some((want_stats, want_events)) = straight(s) else { return };
    let (got_stats, got_events) = resumed(s, pauses).expect("same scenario builds");
    assert_eq!(got_stats, want_stats, "stats diverge for {s:?} pauses {pauses:?}");
    assert_eq!(
        got_events, want_events,
        "event stream diverges for {s:?} pauses {pauses:?}"
    );
    let replayed = EventAccountant::replay(&got_events).expect("spliced stream accounts");
    assert_eq!(replayed, got_stats, "accountant replay diverges for {s:?}");
}

fn pinned_cases() -> Vec<Scenario> {
    let mut out = Vec::new();
    let bases = [
        (64u32, 8usize, 16.0, 100u64, 2_000u64),
        (128, 16, 32.0, 200, 5_000),
        (128, 32, 8.0, 500, 3_000),
        (256, 24, 64.0, 50, 4_000),
        (64, 32, 32.0, 2_000, 5_000), // heavy pressure: unloads in sync mode
        (128, 1, 100.0, 50, 10_000),  // single thread: idle-dominated
    ];
    for (i, &(file_size, threads, run_mean, latency, work)) in bases.iter().enumerate() {
        for fixed in [false, true] {
            for sync in [false, true] {
                out.push(Scenario {
                    file_size,
                    fixed,
                    sync,
                    threads,
                    run_mean,
                    latency,
                    ctx: ContextSizeDist::PAPER_UNIFORM,
                    work,
                    seed: 0x5EED + i as u64,
                });
            }
        }
    }
    out
}

#[test]
fn golden_cases_resume_bit_exactly_at_quartiles() {
    for s in pinned_cases() {
        let Some((stats, _)) = straight(&s) else { continue };
        let n = stats.total_cycles;
        for pause in [n / 4, n / 2, (3 * n) / 4] {
            assert_resume_exact(&s, &[pause]);
        }
    }
}

#[test]
fn chained_checkpoints_match_straight_run() {
    // Snapshot repeatedly — every eighth of the run — restoring from JSON
    // each time; the splice of nine partial streams must equal the
    // uninterrupted stream.
    for s in pinned_cases().into_iter().step_by(5) {
        let Some((stats, _)) = straight(&s) else { continue };
        let n = stats.total_cycles.max(8);
        let pauses: Vec<u64> = (1..8).map(|i| i * (n / 8)).collect();
        assert_resume_exact(&s, &pauses);
    }
}

#[test]
fn pause_at_zero_and_past_end_are_harmless() {
    let s = &pinned_cases()[0];
    let (stats, _) = straight(s).unwrap();
    // Pausing before the first cycle snapshots a freshly started engine.
    assert_resume_exact(s, &[0]);
    // A pause point past the end never triggers: advance() reports the run
    // over first, and resumed() must cope with that.
    assert_resume_exact(s, &[stats.total_cycles + 1_000]);
}

#[test]
fn snapshot_of_unstarted_engine_restores_whole_run() {
    // snapshot() before any advance() captures cycle zero; the restored
    // engine must produce the entire run, RunStart included.
    let s = &pinned_cases()[2];
    let (want_stats, want_events) = straight(s).unwrap();
    let eng = engine(s).unwrap();
    let snap = EngineSnapshot::from_json(&eng.snapshot().to_json()).unwrap();
    drop(eng);
    let mut eng = Engine::restore_with_sink(&snap, RecordingSink::new()).unwrap();
    assert!(eng.advance(u64::MAX));
    let (stats, sink) = eng.finish();
    assert_eq!(stats, want_stats);
    assert_eq!(sink.into_events(), want_events);
}

#[test]
fn version_mismatches_are_typed_errors() {
    let s = &pinned_cases()[0];
    let snap = engine(s).unwrap().snapshot();

    let mut wrong_schema = snap.clone();
    wrong_schema.schema_version += 1;
    match EngineSnapshot::from_json(&wrong_schema.to_json()) {
        Err(SnapshotError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, SNAPSHOT_SCHEMA_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_SCHEMA_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }

    let mut wrong_code = snap.clone();
    wrong_code.code_version += 7;
    match EngineSnapshot::from_json(&wrong_code.to_json()) {
        Err(SnapshotError::CodeMismatch { .. }) => {}
        other => panic!("expected CodeMismatch, got {other:?}"),
    }

    // Restore double-checks even if the caller skipped from_json.
    match Engine::restore(&wrong_schema) {
        Err(SnapshotError::SchemaMismatch { .. }) => {}
        other => panic!("expected SchemaMismatch from restore, got {:?}", other.err()),
    }
}

#[test]
fn corrupt_records_decode_to_errors_not_panics() {
    assert!(matches!(
        EngineSnapshot::from_json("not json at all"),
        Err(SnapshotError::Decode(_))
    ));
    assert!(matches!(
        EngineSnapshot::from_json("{\"schema_version\": 1}"),
        Err(SnapshotError::Decode(_))
    ));
    // A truncated object that still carries a foreign version reports the
    // mismatch rather than a generic decode failure.
    assert!(matches!(
        EngineSnapshot::from_json("{\"schema_version\": 99, \"code_version\": 2}"),
        Err(SnapshotError::SchemaMismatch { found: 99, .. })
    ));
}

#[test]
fn structurally_inconsistent_snapshots_fail_validation() {
    let s = &pinned_cases()[0];
    let mut eng = engine(s).unwrap();
    assert!(!eng.advance(500), "scenario runs past cycle 500");
    let snap = eng.snapshot();

    let mut short = snap.clone();
    short.unload_cost.pop();
    assert!(matches!(Engine::restore(&short), Err(SnapshotError::Invalid(_))));

    let mut bad_tid = snap.clone();
    bad_tid.supply = vec![usize::MAX];
    assert!(matches!(Engine::restore(&bad_tid), Err(SnapshotError::Invalid(_))));

    let mut stale_timer = snap.clone();
    if stale_timer.now > 0 {
        stale_timer.timers = vec![(stale_timer.now - 1, 0)];
        assert!(matches!(Engine::restore(&stale_timer), Err(SnapshotError::Invalid(_))));
    }

    let mut zero_stride = snap;
    zero_stride.checkpoint_stride = 0;
    assert!(matches!(Engine::restore(&zero_stride), Err(SnapshotError::Invalid(_))));
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just(64u32), Just(128), Just(256)],
        any::<bool>(),
        any::<bool>(),
        1usize..32,
        2.0f64..128.0,
        1u64..2000,
        prop_oneof![
            Just(ContextSizeDist::PAPER_UNIFORM),
            (2u32..=32).prop_map(ContextSizeDist::Fixed),
        ],
        100u64..5000,
        0u64..1000,
    )
        .prop_map(
            |(file_size, fixed, sync, threads, run_mean, latency, ctx, work, seed)| Scenario {
                file_size,
                fixed,
                sync,
                threads,
                run_mean,
                latency,
                ctx,
                work,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized specs, archs, and fault families: one snapshot/restore at
    /// a random fraction of the run is invisible in both the statistics and
    /// the event stream.
    #[test]
    fn random_pause_is_invisible(s in arb_scenario(), frac in 0.0f64..1.0) {
        if let Some((stats, _)) = straight(&s) {
            let pause = (stats.total_cycles as f64 * frac) as u64;
            assert_resume_exact(&s, &[pause]);
        }
    }

    /// Two snapshots in one run splice just as cleanly as one.
    #[test]
    fn random_double_pause_is_invisible(
        s in arb_scenario(),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        if let Some((stats, _)) = straight(&s) {
            let mut pauses = [
                (stats.total_cycles as f64 * a) as u64,
                (stats.total_cycles as f64 * b) as u64,
            ];
            pauses.sort_unstable();
            assert_resume_exact(&s, &pauses);
        }
    }
}
