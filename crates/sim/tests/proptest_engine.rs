//! Property tests over the discrete-event engine: accounting identities,
//! determinism, capacity limits, and policy invariants under randomized
//! workloads and architectures.

use proptest::prelude::*;

use rr_alloc::{AnyAllocator, BitmapAllocator, FixedSlots};
use rr_runtime::{SchedCosts, UnloadPolicyKind};
use rr_sim::{Engine, SimOptions, SimStats};
use rr_workload::{ContextSizeDist, Dist, Workload, WorkloadBuilder};

#[derive(Debug, Clone)]
struct Scenario {
    file_size: u32,
    fixed: bool,
    sync: bool,
    threads: usize,
    run_mean: f64,
    latency: u64,
    ctx: ContextSizeDist,
    work: u64,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just(64u32), Just(128), Just(256)],
        any::<bool>(),
        any::<bool>(),
        1usize..32,
        2.0f64..128.0,
        1u64..2000,
        prop_oneof![
            Just(ContextSizeDist::PAPER_UNIFORM),
            (2u32..=32).prop_map(ContextSizeDist::Fixed),
            (1u32..=8).prop_flat_map(|lo| (lo..=24).prop_map(move |hi| {
                ContextSizeDist::Uniform { lo, hi }
            })),
        ],
        100u64..5000,
        0u64..1000,
    )
        .prop_map(
            |(file_size, fixed, sync, threads, run_mean, latency, ctx, work, seed)| Scenario {
                file_size,
                fixed,
                sync,
                threads,
                run_mean,
                latency,
                ctx,
                work,
                seed,
            },
        )
}

/// Everything `Engine::new` consumes, derived from one scenario.
type EngineParts = (Workload, AnyAllocator, SchedCosts, UnloadPolicyKind, SimOptions);

fn build(s: &Scenario) -> Result<EngineParts, String> {
    let latency_dist = if s.sync {
        Dist::Exponential { mean: s.latency as f64 }
    } else {
        Dist::Constant(s.latency)
    };
    let workload = WorkloadBuilder::new()
        .threads(s.threads)
        .run_length(Dist::Geometric { mean: s.run_mean })
        .latency(latency_dist)
        .context_size(s.ctx)
        .work_per_thread(s.work)
        .seed(s.seed)
        .build()?;
    let alloc: AnyAllocator = if s.fixed {
        FixedSlots::new(s.file_size).map_err(|e| e.to_string())?.into()
    } else {
        BitmapAllocator::new(s.file_size).map_err(|e| e.to_string())?.into()
    };
    let (sched, policy, opts) = if s.sync {
        (
            SchedCosts::sync_experiments(),
            UnloadPolicyKind::two_phase(),
            SimOptions { max_cycles: 3_000_000, ..SimOptions::sync_experiments() },
        )
    } else {
        (
            SchedCosts::cache_experiments(),
            UnloadPolicyKind::Never,
            SimOptions { max_cycles: 3_000_000, ..SimOptions::cache_experiments() },
        )
    };
    Ok((workload, alloc, sched, policy, opts))
}

fn run(s: &Scenario) -> Option<SimStats> {
    let (workload, alloc, sched, policy, opts) = build(s).ok()?;
    Engine::new(alloc, sched, policy, workload, opts).ok().map(Engine::run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every simulated cycle lands in exactly one accounting bucket.
    #[test]
    fn accounting_identity(s in arb_scenario()) {
        if let Some(stats) = run(&s) {
            prop_assert_eq!(stats.accounted_cycles(), stats.total_cycles);
        }
    }

    /// Efficiency figures stay in [0, 1] and busy cycles never exceed the
    /// workload's total useful work.
    #[test]
    fn efficiency_bounds(s in arb_scenario()) {
        if let Some(stats) = run(&s) {
            prop_assert!((0.0..=1.0).contains(&stats.efficiency_full()));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&stats.efficiency()));
            prop_assert!(stats.busy_cycles <= s.work * s.threads as u64);
        }
    }

    /// Completion means every thread's useful work was executed exactly.
    #[test]
    fn completed_runs_execute_all_work(s in arb_scenario()) {
        if let Some(stats) = run(&s) {
            if stats.completed_threads == s.threads {
                prop_assert_eq!(stats.busy_cycles, s.work * s.threads as u64);
            } else {
                // Only the horizon stops an engine early.
                prop_assert!(stats.total_cycles >= 3_000_000);
            }
        }
    }

    /// Bit-for-bit determinism under a fixed seed.
    #[test]
    fn determinism(s in arb_scenario()) {
        let a = run(&s);
        let b = run(&s);
        prop_assert_eq!(a, b);
    }

    /// Residency never exceeds what the register file can hold.
    #[test]
    fn residency_respects_capacity(s in arb_scenario()) {
        if let Some(stats) = run(&s) {
            let min_ctx = if s.fixed { 32 } else { 4 };
            prop_assert!(stats.max_resident as u32 <= s.file_size / min_ctx);
            prop_assert!(stats.avg_resident <= stats.max_resident as f64 + 1e-9);
        }
    }

    /// The never-unload policy really never unloads, and the cache
    /// experiments therefore perform exactly one load per thread started.
    #[test]
    fn cache_mode_never_unloads(s in arb_scenario()) {
        let s = Scenario { sync: false, ..s };
        if let Some(stats) = run(&s) {
            prop_assert_eq!(stats.unloads, 0);
            prop_assert_eq!(stats.spin_cycles, 0);
            prop_assert!(stats.loads as usize <= s.threads);
        }
    }

    /// Loads and unloads balance: every unload is a load that happened, and
    /// every load beyond the first per thread must follow an unload.
    #[test]
    fn load_unload_ledger(s in arb_scenario()) {
        if let Some(stats) = run(&s) {
            prop_assert!(stats.unloads <= stats.loads);
            prop_assert!(stats.loads <= s.threads as u64 + stats.unloads);
            prop_assert_eq!(stats.allocs, stats.loads);
        }
    }

    /// The fixed baseline is never charged allocation cycles.
    #[test]
    fn fixed_arch_pays_no_alloc_cycles(s in arb_scenario()) {
        let s = Scenario { fixed: true, ..s };
        if let Some(stats) = run(&s) {
            prop_assert_eq!(stats.alloc_cycles, 0);
            prop_assert_eq!(stats.dealloc_cycles, 0);
        }
    }
}
