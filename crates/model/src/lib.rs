//! Analytical efficiency models for coarsely multithreaded processors.
//!
//! The paper's section 3.4 analysis (following Saavedra-Barrera, Culler &
//! von Eicken) characterizes processor efficiency with three parameters —
//! mean run length `R`, fault latency `L`, context switch cost `S` — and the
//! number of resident contexts `N`:
//!
//! * **Saturation**: with enough resident contexts there is always runnable
//!   work, and `E_sat = R / (R + S)`, independent of `L`.
//! * **Linear region**: below saturation the processor idles part of each
//!   fault, and `E_lin = N·R / (R + L + S)`.
//! * The regimes meet at `N* = 1 + L / (R + S)`.
//!
//! Note on fidelity: the paper's text prints the linear-region formula as
//! `NR/(R+SL)`, but its own saturation condition `N < 1 + L/(R+S)` — and the
//! cited Saavedra-Barrera model — are consistent only with a denominator of
//! `R + L + S`; we implement the latter and treat the printed form as a
//! typographical slip. The simulator cross-validates this choice (see the
//! `model_vs_sim` integration test and the `model_check` binary).

use serde::{Deserialize, Serialize};

/// The deterministic multithreading model's parameters.
///
/// # Example
///
/// ```
/// use rr_model::ModelParams;
///
/// // R = 32, L = 200, S = 6: saturation needs N* ≈ 6.3 contexts.
/// let m = ModelParams::new(32.0, 200.0, 6.0)?;
/// assert!(m.is_linear_regime(4.0));
/// assert!((m.efficiency(4.0) - 4.0 * 32.0 / 238.0).abs() < 1e-12);
/// assert!((m.saturation_efficiency() - 32.0 / 38.0).abs() < 1e-12);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Mean run length between faults, in cycles.
    pub run_length: f64,
    /// Mean fault service latency, in cycles.
    pub latency: f64,
    /// Context switch cost, in cycles.
    pub switch_cost: f64,
}

impl ModelParams {
    /// Creates parameters.
    ///
    /// # Errors
    ///
    /// Returns a reason if any parameter is non-finite, `run_length` is not
    /// positive, or `latency`/`switch_cost` are negative.
    pub fn new(run_length: f64, latency: f64, switch_cost: f64) -> Result<Self, String> {
        let all_finite =
            run_length.is_finite() && latency.is_finite() && switch_cost.is_finite();
        if !all_finite || run_length <= 0.0 || latency < 0.0 || switch_cost < 0.0 {
            return Err(format!(
                "bad model parameters: R={run_length}, L={latency}, S={switch_cost}"
            ));
        }
        Ok(ModelParams { run_length, latency, switch_cost })
    }

    /// Saturation efficiency `E_sat = R / (R + S)` — the ceiling no amount
    /// of multithreading can exceed.
    pub fn saturation_efficiency(&self) -> f64 {
        self.run_length / (self.run_length + self.switch_cost)
    }

    /// Linear-region efficiency `E_lin = N·R / (R + L + S)` for `n` resident
    /// contexts.
    pub fn linear_efficiency(&self, n: f64) -> f64 {
        n * self.run_length / (self.run_length + self.latency + self.switch_cost)
    }

    /// Efficiency with `n` resident contexts: the linear value capped at
    /// saturation.
    pub fn efficiency(&self, n: f64) -> f64 {
        self.linear_efficiency(n).min(self.saturation_efficiency())
    }

    /// The number of resident contexts at which the processor saturates:
    /// `N* = 1 + L / (R + S)`.
    pub fn saturation_contexts(&self) -> f64 {
        1.0 + self.latency / (self.run_length + self.switch_cost)
    }

    /// Whether `n` contexts leave the processor in the linear regime.
    pub fn is_linear_regime(&self, n: f64) -> bool {
        n < self.saturation_contexts()
    }
}

impl ModelParams {
    /// The largest latency `L` that `n` resident contexts can tolerate while
    /// keeping efficiency at least `target` — the paper's headline framing
    /// ("more contexts ... allows applications to tolerate ... longer
    /// latencies"), inverted from `E_lin`.
    ///
    /// Returns `None` when the target is unreachable even at zero latency
    /// (i.e. `target > E_sat` or out of `(0, 1]`).
    pub fn max_tolerable_latency(&self, n: f64, target: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&target) || target <= 0.0 {
            return None;
        }
        if target > self.saturation_efficiency() {
            return None;
        }
        // E = N·R / (R + L + S) >= target  ⇔  L <= N·R/target - R - S.
        let l = n * self.run_length / target - self.run_length - self.switch_cost;
        (l >= 0.0).then_some(l)
    }

    /// The number of resident contexts needed to reach efficiency `target`
    /// at these parameters (∞ when the target exceeds `E_sat`).
    pub fn contexts_needed(&self, target: f64) -> f64 {
        if target <= 0.0 {
            return 0.0;
        }
        if target > self.saturation_efficiency() {
            return f64::INFINITY;
        }
        // In the linear regime N = E·(R+L+S)/R; at E = E_sat this is the
        // saturation count.
        target * (self.run_length + self.latency + self.switch_cost) / self.run_length
    }
}

/// Predicted efficiency ratio between two context counts at the same
/// parameters — the model's headline explanation of why register relocation
/// wins: in the linear regime, efficiency is proportional to resident
/// contexts.
pub fn resident_context_leverage(params: &ModelParams, n_fixed: f64, n_flexible: f64) -> f64 {
    let e_fixed = params.efficiency(n_fixed);
    if e_fixed == 0.0 {
        return f64::INFINITY;
    }
    params.efficiency(n_flexible) / e_fixed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(r: f64, l: f64, s: f64) -> ModelParams {
        ModelParams::new(r, l, s).unwrap()
    }

    #[test]
    fn saturation_matches_hand_calculation() {
        // R = 100, S = 6: E_sat = 100/106.
        let m = p(100.0, 50.0, 6.0);
        assert!((m.saturation_efficiency() - 100.0 / 106.0).abs() < 1e-12);
    }

    #[test]
    fn linear_region_is_linear_in_n() {
        let m = p(32.0, 200.0, 6.0);
        let e1 = m.linear_efficiency(1.0);
        let e3 = m.linear_efficiency(3.0);
        assert!((e3 - 3.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn efficiency_caps_at_saturation() {
        let m = p(32.0, 200.0, 6.0);
        let n_star = m.saturation_contexts();
        assert!(m.efficiency(n_star * 4.0) <= m.saturation_efficiency() + 1e-12);
        assert!(m.efficiency(n_star / 2.0) < m.saturation_efficiency());
    }

    #[test]
    fn regimes_meet_at_n_star() {
        let m = p(32.0, 200.0, 6.0);
        let n_star = m.saturation_contexts();
        let lin = m.linear_efficiency(n_star);
        let sat = m.saturation_efficiency();
        assert!((lin - sat).abs() < 1e-9, "lin {lin} vs sat {sat}");
        assert!(m.is_linear_regime(n_star - 0.1));
        assert!(!m.is_linear_regime(n_star + 0.1));
    }

    #[test]
    fn paper_trend_short_runs_long_latency_need_many_contexts() {
        // "We expect R to decrease and L to increase, requiring a large
        // number of contexts before processor efficiency saturates."
        let easy = p(128.0, 50.0, 6.0);
        let hard = p(8.0, 1000.0, 6.0);
        assert!(hard.saturation_contexts() > 10.0 * easy.saturation_contexts());
    }

    #[test]
    fn leverage_is_ratio_of_context_counts_in_linear_regime() {
        // Deep in the linear regime, 2x contexts = 2x efficiency — the
        // "factor of two for many workloads" claim.
        let m = p(16.0, 2000.0, 6.0);
        let lev = resident_context_leverage(&m, 4.0, 8.0);
        assert!((lev - 2.0).abs() < 1e-9, "got {lev}");
    }

    #[test]
    fn leverage_saturates() {
        let m = p(128.0, 50.0, 6.0);
        // Both counts beyond saturation: no leverage left.
        let lev = resident_context_leverage(&m, 4.0, 16.0);
        assert!((lev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_context_edge() {
        let m = p(32.0, 100.0, 6.0);
        assert_eq!(m.efficiency(0.0), 0.0);
        assert_eq!(resident_context_leverage(&m, 0.0, 4.0), f64::INFINITY);
    }

    #[test]
    fn latency_tolerance_inverts_the_linear_formula() {
        let m = p(32.0, 0.0, 6.0); // latency filled in by the query
        for (n, target) in [(4.0, 0.5), (8.0, 0.25), (16.0, 0.8)] {
            let l = m.max_tolerable_latency(n, target).unwrap();
            let check = ModelParams::new(32.0, l, 6.0).unwrap().efficiency(n);
            assert!((check - target).abs() < 1e-9, "n={n} target={target}: {check}");
        }
    }

    #[test]
    fn more_contexts_tolerate_more_latency() {
        // The paper's core quantitative story: doubling resident contexts
        // more than doubles the tolerable latency at fixed efficiency.
        let m = p(32.0, 0.0, 6.0);
        let l4 = m.max_tolerable_latency(4.0, 0.5).unwrap();
        let l8 = m.max_tolerable_latency(8.0, 0.5).unwrap();
        assert!(l8 > 2.0 * l4, "{l4} -> {l8}");
    }

    #[test]
    fn unreachable_targets_are_none_or_infinite() {
        let m = p(32.0, 200.0, 6.0);
        assert!(m.max_tolerable_latency(4.0, 0.95).is_none()); // > E_sat
        assert!(m.max_tolerable_latency(4.0, 0.0).is_none());
        assert!(m.max_tolerable_latency(4.0, 1.5).is_none());
        assert_eq!(m.contexts_needed(0.95), f64::INFINITY);
        assert_eq!(m.contexts_needed(0.0), 0.0);
    }

    #[test]
    fn contexts_needed_round_trips_with_efficiency() {
        let m = p(32.0, 400.0, 6.0);
        for target in [0.1, 0.3, 0.6] {
            let n = m.contexts_needed(target);
            assert!((m.efficiency(n) - target).abs() < 1e-9);
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(ModelParams::new(0.0, 1.0, 1.0).is_err());
        assert!(ModelParams::new(1.0, -1.0, 1.0).is_err());
        assert!(ModelParams::new(1.0, 1.0, -1.0).is_err());
        assert!(ModelParams::new(f64::NAN, 1.0, 1.0).is_err());
        assert!(ModelParams::new(8.0, 0.0, 0.0).is_ok());
    }
}
