//! Property tests: encode/decode round trips, relocation identities, and
//! assembler/disassembler round trips over arbitrary instructions.

use proptest::prelude::*;
use rr_isa::{assemble, decode, disassemble, encode, relocate_word, ContextReg, Instr, Rrm};

fn arb_reg() -> impl Strategy<Value = ContextReg> {
    (0u8..64).prop_map(|n| ContextReg::new(n).unwrap())
}

fn arb_imm14() -> impl Strategy<Value = i32> {
    -(1i32 << 13)..(1i32 << 13)
}

fn arb_instr() -> impl Strategy<Value = Instr<ContextReg>> {
    let r = arb_reg;
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Add { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Sub { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::And { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Or { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Xor { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Sll { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Srl { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Sra { d, s, t }),
        (r(), r(), r()).prop_map(|(d, s, t)| Instr::Slt { d, s, t }),
        (r(), r(), arb_imm14()).prop_map(|(d, s, imm)| Instr::Addi { d, s, imm }),
        (r(), r(), arb_imm14()).prop_map(|(d, s, imm)| Instr::Andi { d, s, imm }),
        (r(), r(), arb_imm14()).prop_map(|(d, s, imm)| Instr::Ori { d, s, imm }),
        (r(), r(), arb_imm14()).prop_map(|(d, s, imm)| Instr::Xori { d, s, imm }),
        (r(), r(), arb_imm14()).prop_map(|(d, s, imm)| Instr::Slti { d, s, imm }),
        (r(), r(), 0u8..32).prop_map(|(d, s, shamt)| Instr::Slli { d, s, shamt }),
        (r(), r(), 0u8..32).prop_map(|(d, s, shamt)| Instr::Srli { d, s, shamt }),
        (r(), r(), 0u8..32).prop_map(|(d, s, shamt)| Instr::Srai { d, s, shamt }),
        (r(), arb_imm14()).prop_map(|(d, imm)| Instr::Li { d, imm }),
        (r(), r(), arb_imm14()).prop_map(|(d, base, off)| Instr::Lw { d, base, off }),
        (r(), r(), arb_imm14()).prop_map(|(s, base, off)| Instr::Sw { s, base, off }),
        (r(), r()).prop_map(|(d, s)| Instr::Mov { d, s }),
        (r(), r(), arb_imm14()).prop_map(|(s, t, off)| Instr::Beq { s, t, off }),
        (r(), r(), arb_imm14()).prop_map(|(s, t, off)| Instr::Bne { s, t, off }),
        (0u32..(1 << 20)).prop_map(|target| Instr::Jmp { target }),
        (r(), 0u32..(1 << 20)).prop_map(|(d, target)| Instr::Jal { d, target }),
        r().prop_map(|s| Instr::Jr { s }),
        (r(), r()).prop_map(|(d, s)| Instr::Jalr { d, s }),
        r().prop_map(|s| Instr::Ldrrm { s }),
        r().prop_map(|d| Instr::Mfpsw { d }),
        r().prop_map(|s| Instr::Mtpsw { s }),
    ]
}

proptest! {
    /// encode ∘ decode is the identity on every representable instruction.
    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let word = encode(&instr).unwrap();
        prop_assert_eq!(decode(word).unwrap(), instr);
    }

    /// In-word relocation (Figure 2 hardware) agrees with relocation on the
    /// decoded structure, whenever the mask fits the operand field and every
    /// relocated operand still fits 6 bits.
    #[test]
    fn word_relocation_matches_structural(instr in arb_instr(), mask in 0u16..64) {
        let rrm = Rrm::from_raw(mask);
        let word = encode(&instr).unwrap();
        let relocated = relocate_word(word, rrm).unwrap();
        let structural = instr.map_registers(|x| {
            ContextReg::new((rrm.relocate(x).0 & 0x3f) as u8).unwrap()
        });
        prop_assert_eq!(decode(relocated).unwrap(), structural);
    }

    /// Relocation with the zero mask is the identity.
    #[test]
    fn zero_mask_is_identity(instr in arb_instr()) {
        let word = encode(&instr).unwrap();
        prop_assert_eq!(relocate_word(word, Rrm::ZERO), Some(word));
    }

    /// Relocation is idempotent: OR-ing the same mask twice changes nothing.
    #[test]
    fn relocation_is_idempotent(instr in arb_instr(), mask in 0u16..64) {
        let rrm = Rrm::from_raw(mask);
        let word = encode(&instr).unwrap();
        let once = relocate_word(word, rrm).unwrap();
        prop_assert_eq!(relocate_word(once, rrm), Some(once));
    }

    /// Disassembled text reassembles to the identical encoding. Branches with
    /// unrepresentable absolute targets degrade to `.word`, which preserves
    /// the bits exactly.
    #[test]
    fn disassemble_assemble_round_trip(instrs in prop::collection::vec(arb_instr(), 1..20)) {
        let words: Vec<u32> = instrs.iter().map(|i| encode(i).unwrap()).collect();
        let text = disassemble(&words).join("\n");
        let p = assemble(&text).unwrap();
        prop_assert_eq!(p.words(), &words[..]);
    }

    /// Aligned relocation behaves like addition for in-context operands.
    #[test]
    fn or_is_add_when_aligned(k in 0u32..7, base_idx in 0u16..16, off in 0u8..64) {
        let size = 1u32 << k;
        let base = base_idx * size as u16;
        prop_assume!(u32::from(off) < size);
        let rrm = Rrm::for_context(base, size).unwrap();
        let abs = rrm.relocate(ContextReg::new(off).unwrap());
        prop_assert_eq!(u32::from(abs.0), u32::from(base) + u32::from(off));
    }
}
