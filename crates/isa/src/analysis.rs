//! Static analysis of assembled programs: the compiler/tooling side of the
//! paper's section 2.4.
//!
//! Two obligations fall on software under register relocation:
//!
//! 1. **The compiler must report each thread's register demand** so the
//!    runtime can size its context ("the compiler must inform the runtime
//!    system about the number of registers that the thread requires").
//!    [`register_demand`] computes it from the executable, and
//!    [`context_size_needed`] rounds it to the power-of-two context the
//!    runtime will allocate — including the paper's 17-vs-16 observation:
//!    one extra register can double the context.
//! 2. **Protection is by convention, not hardware**, so the paper suggests
//!    "a separate tool could be used to statically check executables or
//!    object files for most violations of context boundaries".
//!    [`check_context_bounds`] is that tool.

use serde::{Deserialize, Serialize};

use crate::encode::decode;
use crate::reg::MAX_CONTEXT_SIZE;

/// The number of registers a program actually names: one past the highest
/// register operand, or 0 for a program with no register operands.
///
/// Words that fail to decode (data) are skipped — data does not name
/// registers.
///
/// # Example
///
/// ```
/// use rr_isa::{assemble, analysis::register_demand};
///
/// let p = assemble("add r7, r5, r6\n li r2, 1")?;
/// assert_eq!(register_demand(p.words()), 8);
/// # Ok::<(), rr_isa::AsmError>(())
/// ```
pub fn register_demand(words: &[u32]) -> u32 {
    words
        .iter()
        .filter_map(|&w| decode(w).ok())
        .flat_map(|i| i.registers().into_iter().map(|r| u32::from(r.number()) + 1).collect::<Vec<_>>())
        .max()
        .unwrap_or(0)
}

/// The power-of-two context size a thread with this register demand needs,
/// with minimum `min_size`.
///
/// # Example
///
/// The paper's compiler trade-off: 17 registers cost a 32-register context,
/// so a compiler may prefer to squeeze into 16.
///
/// ```
/// use rr_isa::analysis::context_size_needed;
///
/// assert_eq!(context_size_needed(16, 4), 16);
/// assert_eq!(context_size_needed(17, 4), 32);  // 15 registers wasted
/// ```
pub fn context_size_needed(demand: u32, min_size: u32) -> u32 {
    demand.next_power_of_two().max(min_size)
}

/// A context-boundary violation found by the static checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundsViolation {
    /// Word index of the offending instruction.
    pub word_index: usize,
    /// Disassembly of the instruction.
    pub instr: String,
    /// The offending operand's register number.
    pub operand: u8,
    /// The declared context size.
    pub declared_size: u32,
}

impl core::fmt::Display for BoundsViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "word {}: `{}` names r{}, outside the declared {}-register context",
            self.word_index, self.instr, self.operand, self.declared_size
        )
    }
}

/// Statically checks an executable against its declared context size,
/// reporting every register operand that would reach outside the context —
/// the low-level debugging tool of the paper's section 2.4.
///
/// Like the paper's "most violations" phrasing, this is a conservative
/// syntactic check: it cannot see registers reached through `LDRRM` mask
/// arithmetic, only operands that are out of bounds outright.
///
/// # Example
///
/// ```
/// use rr_isa::{assemble, analysis::check_context_bounds};
///
/// let p = assemble("add r1, r2, r9")?;
/// let violations = check_context_bounds(p.words(), 8);
/// assert_eq!(violations.len(), 1);
/// assert_eq!(violations[0].operand, 9);
/// # Ok::<(), rr_isa::AsmError>(())
/// ```
pub fn check_context_bounds(words: &[u32], declared_size: u32) -> Vec<BoundsViolation> {
    let mut out = Vec::new();
    for (word_index, &w) in words.iter().enumerate() {
        let Ok(instr) = decode(w) else { continue };
        for r in instr.registers() {
            if u32::from(r.number()) >= declared_size {
                out.push(BoundsViolation {
                    word_index,
                    instr: instr.to_string(),
                    operand: r.number(),
                    declared_size,
                });
            }
        }
    }
    out
}

/// Summary statistics about a program's register usage, for compiler
/// reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterUsage {
    /// One past the highest register named.
    pub demand: u32,
    /// Number of distinct registers named.
    pub distinct: u32,
    /// Registers below `demand` that are never named (internal
    /// fragmentation within the context).
    pub unused_below_demand: u32,
}

/// Computes [`RegisterUsage`] for an executable.
pub fn register_usage(words: &[u32]) -> RegisterUsage {
    let mut seen = [false; MAX_CONTEXT_SIZE as usize];
    for instr in words.iter().filter_map(|&w| decode(w).ok()) {
        for r in instr.registers() {
            seen[usize::from(r.number())] = true;
        }
    }
    let demand = seen
        .iter()
        .rposition(|&s| s)
        .map(|i| i as u32 + 1)
        .unwrap_or(0);
    let distinct = seen.iter().filter(|&&s| s).count() as u32;
    RegisterUsage { demand, distinct, unused_below_demand: demand - distinct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn demand_of_figure3_yield_code() {
        // The yield sequence touches r0, r1, r2: demand 3.
        let p = assemble("ldrrm r2\n mfpsw r1\n mtpsw r1\n jr r0").unwrap();
        assert_eq!(register_demand(p.words()), 3);
    }

    #[test]
    fn demand_ignores_data_words() {
        let p = assemble(".word 0xffffffff\n add r1, r2, r3").unwrap();
        assert_eq!(register_demand(p.words()), 4);
        assert_eq!(register_demand(&[]), 0);
        let data_only = assemble(".word 0xffffffff").unwrap();
        assert_eq!(register_demand(data_only.words()), 0);
    }

    #[test]
    fn context_sizing_and_the_17_register_cliff() {
        assert_eq!(context_size_needed(0, 4), 4);
        assert_eq!(context_size_needed(6, 4), 8);
        assert_eq!(context_size_needed(16, 4), 16);
        assert_eq!(context_size_needed(17, 4), 32);
        assert_eq!(context_size_needed(33, 4), 64);
    }

    #[test]
    fn checker_finds_all_violations_with_positions() {
        let p = assemble(
            r#"
            add r1, r2, r3      ; fine for size 8
            lw r9, 0(r1)        ; r9 violates size 8
            sw r10, 4(r12)      ; both violate
            halt
            "#,
        )
        .unwrap();
        let v = check_context_bounds(p.words(), 8);
        assert_eq!(v.len(), 3);
        assert_eq!((v[0].word_index, v[0].operand), (1, 9));
        assert_eq!((v[1].word_index, v[1].operand), (2, 10));
        assert_eq!((v[2].word_index, v[2].operand), (2, 12));
        assert!(v[0].to_string().contains("outside the declared 8-register context"));
        assert!(check_context_bounds(p.words(), 16).is_empty());
    }

    #[test]
    fn checker_skips_data() {
        let p = assemble(".word 0xffffffff").unwrap();
        assert!(check_context_bounds(p.words(), 4).is_empty());
    }

    #[test]
    fn usage_statistics() {
        let p = assemble("add r1, r2, r7\n mov r1, r2").unwrap();
        let u = register_usage(p.words());
        assert_eq!(u.demand, 8);
        assert_eq!(u.distinct, 3);
        assert_eq!(u.unused_below_demand, 5);
        let empty = register_usage(&[]);
        assert_eq!(empty.demand, 0);
        assert_eq!(empty.distinct, 0);
    }

    #[test]
    fn demand_feeds_the_allocator_contract() {
        // End-to-end compiler story: analyze, size, check.
        let p = assemble("li r5, 1\n addi r6, r5, 2\n add r7, r5, r6").unwrap();
        let demand = register_demand(p.words());
        let size = context_size_needed(demand, 4);
        assert_eq!(size, 8);
        assert!(check_context_bounds(p.words(), size).is_empty());
    }
}
