//! Disassembly of encoded words back into assembly text.

use crate::encode::decode;
use crate::instr::{Instr, ADDR20_LIMIT};

/// Disassembles a sequence of words into one line of assembly text per word,
/// assuming the first word sits at word address `origin`.
///
/// Branch instructions carry PC-relative offsets in the encoding but the
/// assembler reads absolute targets, so the disassembler converts offsets to
/// absolute addresses using each instruction's position. Words that do not
/// decode — and branches whose reconstructed target falls outside the address
/// space — are rendered as `.word 0x...`, so a program containing data still
/// round-trips through the assembler.
pub fn disassemble_at(words: &[u32], origin: u32) -> Vec<String> {
    words
        .iter()
        .enumerate()
        .map(|(idx, &w)| {
            let pc = i64::from(origin) + idx as i64;
            match decode(w) {
                Ok(Instr::Beq { s, t, off }) => match branch_target(pc, off) {
                    Some(target) => format!("beq {s}, {t}, {target}"),
                    None => format!(".word {w:#010x}"),
                },
                Ok(Instr::Bne { s, t, off }) => match branch_target(pc, off) {
                    Some(target) => format!("bne {s}, {t}, {target}"),
                    None => format!(".word {w:#010x}"),
                },
                Ok(i) => i.to_string(),
                Err(_) => format!(".word {w:#010x}"),
            }
        })
        .collect()
}

/// Disassembles with origin 0; see [`disassemble_at`].
///
/// # Example
///
/// ```
/// use rr_isa::{assemble, disassemble};
///
/// let p = assemble("add r1, r2, r3\n .word 0xffffffff")?;
/// let text = disassemble(p.words());
/// assert!(text[0].contains("add r1, r2, r3"));
/// assert!(text[1].starts_with(".word"));
/// # Ok::<(), rr_isa::AsmError>(())
/// ```
pub fn disassemble(words: &[u32]) -> Vec<String> {
    disassemble_at(words, 0)
}

fn branch_target(pc: i64, off: i32) -> Option<i64> {
    let target = pc + 1 + i64::from(off);
    (0..i64::from(ADDR20_LIMIT)).contains(&target).then_some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{assemble, assemble_at};

    #[test]
    fn disassembly_reassembles_to_identical_words() {
        let src = r#"
            start:
                li r1, 10
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                lw r2, 4(r3)
                sw r2, -4(r3)
                jal r5, start
                jalr r5, r6
                ldrrm r2
                mfpsw r1
                mtpsw r1
                halt
        "#;
        let p = assemble(src).unwrap();
        let text = disassemble(p.words()).join("\n");
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.words(), p2.words());
    }

    #[test]
    fn branch_targets_respect_origin() {
        let p = assemble_at("loop: nop\n bne r1, r0, loop", 50).unwrap();
        let text = disassemble_at(p.words(), 50);
        assert_eq!(text[1], "bne r1, r0, 50");
        let p2 = assemble_at(&text.join("\n"), 50).unwrap();
        assert_eq!(p.words(), p2.words());
    }

    #[test]
    fn out_of_range_branches_become_data() {
        // A backwards branch from address 0 has no absolute target.
        let p = assemble_at("x: nop\n beq r0, r0, x", 0).unwrap();
        let branch_word = p.words()[1];
        let text = disassemble(&[branch_word]);
        assert!(text[0].starts_with(".word"), "got {}", text[0]);
    }

    #[test]
    fn undecodable_words_become_data() {
        let out = disassemble(&[0xffff_ffff]);
        assert_eq!(out, vec![".word 0xffffffff"]);
    }
}
