//! A small RISC instruction set with register-relocation support.
//!
//! This crate defines the instruction set architecture used throughout the
//! register-relocation reproduction: typed register operands, a compact
//! instruction enum, a fixed-field 32-bit binary encoding, a two-pass text
//! assembler, and a disassembler.
//!
//! # Background
//!
//! Register relocation (Waldspurger & Weihl, ISCA 1993) lets instructions name
//! *context-relative* registers, numbered consecutively from `r0`. During
//! instruction decode, each register operand field is bitwise-OR'd with a
//! *register relocation mask* (RRM) to form the *absolute* register number used
//! for execution. Because the OR leaves a flexible split between "base" bits
//! (from the RRM) and "offset" bits (from the operand), the register file can
//! be partitioned in software into power-of-two contexts of varying sizes.
//!
//! The type system mirrors the hardware distinction:
//!
//! * [`ContextReg`] — a context-relative operand as encoded in an instruction
//!   (at most [`OPERAND_BITS`] bits wide).
//! * [`AbsReg`] — an absolute register number after relocation (wide enough to
//!   address the whole register file; the paper's "widened internal paths").
//! * [`Rrm`] — a relocation mask value.
//! * [`Instr<R>`] — an instruction generic over its register representation,
//!   so a decoded instruction is `Instr<ContextReg>` and a relocated one is
//!   `Instr<AbsReg>`.
//!
//! # Example
//!
//! Assemble and encode the paper's Figure 3 context-switch sequence:
//!
//! ```
//! use rr_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     yield:
//!         ldrrm r2        ; install next thread's relocation mask
//!         mfpsw r1        ; save old PSW (executes in the LDRRM delay slot)
//!         mtpsw r1        ; restore new context's PSW
//!         jr r0           ; jump to new context's saved PC
//!     "#,
//! )?;
//! assert_eq!(program.words().len(), 4);
//! # Ok::<(), rr_isa::AsmError>(())
//! ```

pub mod analysis;
pub mod asm;
pub mod disasm;
pub mod encode;
pub mod error;
pub mod instr;
pub mod reg;

pub use asm::{assemble, assemble_at, Program};
pub use disasm::{disassemble, disassemble_at};
pub use encode::{decode, encode, relocate_word};
pub use error::{AsmError, DecodeError, EncodeError, RegisterError};
pub use instr::{Instr, Opcode};
pub use reg::{AbsReg, ContextReg, Rrm, MAX_CONTEXT_SIZE, OPERAND_BITS};
