//! A small two-pass assembler for the ISA.
//!
//! The accepted syntax is one instruction, label, or directive per line:
//!
//! ```text
//! ; comments start with ';', '#', or '//'
//! loop:                   ; labels end with ':'
//!     addi r1, r1, -1     ; immediates: decimal, 0x hex, 0b binary
//!     lw   r2, 4(r3)      ; loads/stores use off(base) addressing
//!     bne  r1, r0, loop   ; branch/jump targets are labels or addresses
//!     ldrrm r2            ; relocation instructions assemble like any other
//!     add  r1, r2, c1.r6  ; multi-RRM selector syntax (paper section 5.3)
//!     .word 0xdeadbeef    ; raw data word
//!     .space 4            ; four zero words
//!     halt
//! ```
//!
//! Register operands are *context-relative*; the assembler enforces only the
//! architectural bound [`crate::MAX_CONTEXT_SIZE`]. A machine configured with
//! a narrower effective operand width checks the tighter bound at run time.

use std::collections::HashMap;

use crate::encode::encode;
use crate::error::{AsmError, AsmErrorKind};
use crate::instr::{Instr, ADDR20_LIMIT, IMM14_MAX, IMM14_MIN};
use crate::reg::ContextReg;

/// An assembled program: encoded words plus the label map.
///
/// # Example
///
/// ```
/// use rr_isa::assemble;
///
/// let p = assemble("start: li r1, 5\n jmp start")?;
/// assert_eq!(p.label("start"), Some(0));
/// assert_eq!(p.words().len(), 2);
/// # Ok::<(), rr_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    origin: u32,
    words: Vec<u32>,
    labels: HashMap<String, u32>,
}

impl Program {
    /// The encoded instruction/data words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The word address of the first word.
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The absolute word address of `name`, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// All labels and their absolute addresses.
    pub fn labels(&self) -> impl Iterator<Item = (&str, u32)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Assembles `source` with origin 0.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, 0)
}

/// Assembles `source` so that its first word sits at word address `origin`.
///
/// Labels resolve to absolute addresses; branches encode PC-relative offsets.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
pub fn assemble_at(source: &str, origin: u32) -> Result<Program, AsmError> {
    let items = parse(source)?;

    // Pass 1: assign addresses to labels.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr = origin;
    for item in &items {
        match &item.kind {
            ItemKind::Label(name) => {
                if labels.insert(name.clone(), addr).is_some() {
                    return Err(AsmError {
                        line: item.line,
                        kind: AsmErrorKind::DuplicateLabel(name.clone()),
                    });
                }
            }
            ItemKind::Stmt(stmt) => addr += stmt_words(stmt),
            ItemKind::Word(_) => addr += 1,
            ItemKind::Space(n) => addr += n,
        }
    }

    // Pass 2: encode.
    let mut words = Vec::new();
    let mut addr = origin;
    for item in &items {
        match &item.kind {
            ItemKind::Label(_) => {}
            ItemKind::Word(w) => {
                words.push(*w);
                addr += 1;
            }
            ItemKind::Space(n) => {
                words.extend(std::iter::repeat_n(0, *n as usize));
                addr += n;
            }
            ItemKind::Stmt(stmt) if stmt.mnemonic == "li32" => {
                for instr in lower_li32(stmt, item.line)? {
                    let word = encode(&instr).map_err(|e| AsmError {
                        line: item.line,
                        kind: AsmErrorKind::BadImmediate(e.to_string()),
                    })?;
                    words.push(word);
                    addr += 1;
                }
            }
            ItemKind::Stmt(stmt) => {
                let instr = lower(stmt, addr, &labels, item.line)?;
                let word = encode(&instr).map_err(|e| AsmError {
                    line: item.line,
                    kind: AsmErrorKind::BadImmediate(e.to_string()),
                })?;
                words.push(word);
                addr += 1;
            }
        }
    }

    Ok(Program { origin, words, labels })
}

#[derive(Debug)]
struct Item {
    line: usize,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Label(String),
    Stmt(Stmt),
    Word(u32),
    Space(u32),
}

#[derive(Debug)]
struct Stmt {
    mnemonic: String,
    operands: Vec<String>,
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == ';' || c == '#' {
            end = i;
            break;
        }
        if c == '/' && line[i..].starts_with("//") {
            end = i;
            break;
        }
    }
    &line[..end]
}

fn parse(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = strip_comment(raw).trim();
        // A line may carry a label and an instruction: `loop: addi r1, r1, -1`.
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(AsmError {
                    line: line_no,
                    kind: AsmErrorKind::BadDirective(text.to_string()),
                });
            }
            items.push(Item { line: line_no, kind: ItemKind::Label(name.to_string()) });
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".word") {
            let v = parse_int(rest.trim()).ok_or_else(|| AsmError {
                line: line_no,
                kind: AsmErrorKind::BadDirective(text.to_string()),
            })?;
            items.push(Item { line: line_no, kind: ItemKind::Word(v as u32) });
            continue;
        }
        if let Some(rest) = text.strip_prefix(".space") {
            let v = parse_int(rest.trim()).filter(|v| *v >= 0).ok_or_else(|| AsmError {
                line: line_no,
                kind: AsmErrorKind::BadDirective(text.to_string()),
            })?;
            items.push(Item { line: line_no, kind: ItemKind::Space(v as u32) });
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let operands: Vec<String> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(|s| s.trim().to_string()).collect()
        };
        items.push(Item {
            line: line_no,
            kind: ItemKind::Stmt(Stmt { mnemonic: mnemonic.to_ascii_lowercase(), operands }),
        });
    }
    Ok(items)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(tok: &str, line: usize) -> Result<ContextReg, AsmError> {
    let bad = || AsmError { line, kind: AsmErrorKind::BadRegister(tok.to_string()) };
    // Multi-RRM selector syntax: cK.rN
    if let Some(rest) = tok.strip_prefix('c').or_else(|| tok.strip_prefix('C')) {
        if let Some((sel, reg)) = rest.split_once('.') {
            let selector: u8 = sel.parse().map_err(|_| bad())?;
            let reg = reg.strip_prefix('r').or_else(|| reg.strip_prefix('R')).ok_or_else(bad)?;
            let number: u8 = reg.parse().map_err(|_| bad())?;
            return ContextReg::with_selector(number, selector).map_err(|_| bad());
        }
    }
    let body = tok.strip_prefix('r').or_else(|| tok.strip_prefix('R')).ok_or_else(bad)?;
    let number: u8 = body.parse().map_err(|_| bad())?;
    ContextReg::new(number).map_err(|_| bad())
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let v = parse_int(tok).ok_or_else(|| AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_string()),
    })?;
    if v < i64::from(IMM14_MIN) || v > i64::from(IMM14_MAX) {
        return Err(AsmError { line, kind: AsmErrorKind::BadImmediate(tok.to_string()) });
    }
    Ok(v as i32)
}

fn parse_shamt(tok: &str, line: usize) -> Result<u8, AsmError> {
    let v = parse_int(tok).ok_or_else(|| AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_string()),
    })?;
    if !(0..32).contains(&v) {
        return Err(AsmError { line, kind: AsmErrorKind::BadImmediate(tok.to_string()) });
    }
    Ok(v as u8)
}

/// Parses `off(base)` memory operand syntax.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, ContextReg), AsmError> {
    let bad = || AsmError { line, kind: AsmErrorKind::BadOperands {
        mnemonic: "lw/sw".to_string(),
        expected: "rd, off(base)",
    }};
    let open = tok.find('(').ok_or_else(bad)?;
    let close = tok.rfind(')').ok_or_else(bad)?;
    if close <= open {
        return Err(bad());
    }
    let off_text = tok[..open].trim();
    let off = if off_text.is_empty() { 0 } else { parse_imm(off_text, line)? };
    let base = parse_reg(tok[open + 1..close].trim(), line)?;
    Ok((off, base))
}

fn resolve_target(
    tok: &str,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<u32, AsmError> {
    if let Some(v) = parse_int(tok) {
        if v < 0 || v as u64 >= u64::from(ADDR20_LIMIT) {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::JumpOutOfRange { to: v.max(0) as u32 },
            });
        }
        return Ok(v as u32);
    }
    labels.get(tok).copied().ok_or_else(|| AsmError {
        line,
        kind: AsmErrorKind::UndefinedLabel(tok.to_string()),
    })
}

fn branch_offset(from: u32, to: u32, line: usize) -> Result<i32, AsmError> {
    // Offset is relative to the instruction after the branch.
    let off = i64::from(to) - i64::from(from) - 1;
    if off < i64::from(IMM14_MIN) || off > i64::from(IMM14_MAX) {
        return Err(AsmError { line, kind: AsmErrorKind::BranchOutOfRange { from, to } });
    }
    Ok(off as i32)
}

fn expect(
    stmt: &Stmt,
    n: usize,
    expected: &'static str,
    line: usize,
) -> Result<(), AsmError> {
    if stmt.operands.len() == n {
        Ok(())
    } else {
        Err(AsmError {
            line,
            kind: AsmErrorKind::BadOperands { mnemonic: stmt.mnemonic.clone(), expected },
        })
    }
}

/// Number of encoded words a statement expands to.
fn stmt_words(stmt: &Stmt) -> u32 {
    if stmt.mnemonic == "li32" {
        LI32_WORDS
    } else {
        1
    }
}

/// Words produced by the `li32` pseudo-instruction. The expansion is
/// fixed-length so label addresses never depend on the constant's value.
const LI32_WORDS: u32 = 5;

/// Expands `li32 rd, imm32`: loads an arbitrary 32-bit constant in three
/// 11-or-fewer-bit positive chunks, shifting between them. The paper's
/// runtime code needs such constants (Appendix A's bitmap masks); the real
/// ISA's 14-bit immediates cannot carry them in one instruction.
fn lower_li32(stmt: &Stmt, line: usize) -> Result<Vec<Instr<ContextReg>>, AsmError> {
    if stmt.operands.len() != 2 {
        return Err(AsmError {
            line,
            kind: AsmErrorKind::BadOperands { mnemonic: stmt.mnemonic.clone(), expected: "rd, imm32" },
        });
    }
    let d = parse_reg(&stmt.operands[0], line)?;
    let v = parse_int(&stmt.operands[1])
        .filter(|v| (-(1i64 << 31)..(1i64 << 32)).contains(v))
        .ok_or_else(|| AsmError {
            line,
            kind: AsmErrorKind::BadImmediate(stmt.operands[1].clone()),
        })? as u32;
    let hi = (v >> 22) as i32; // 10 bits
    let mid = ((v >> 11) & 0x7ff) as i32; // 11 bits
    let lo = (v & 0x7ff) as i32; // 11 bits
    Ok(vec![
        Instr::Li { d, imm: hi },
        Instr::Slli { d, s: d, shamt: 11 },
        Instr::Ori { d, s: d, imm: mid },
        Instr::Slli { d, s: d, shamt: 11 },
        Instr::Ori { d, s: d, imm: lo },
    ])
}

fn lower(
    stmt: &Stmt,
    addr: u32,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<Instr<ContextReg>, AsmError> {
    let ops = &stmt.operands;
    let reg = |i: usize| parse_reg(&ops[i], line);
    let imm = |i: usize| parse_imm(&ops[i], line);
    macro_rules! rrr {
        ($v:ident) => {{
            expect(stmt, 3, "rd, rs, rt", line)?;
            Instr::$v { d: reg(0)?, s: reg(1)?, t: reg(2)? }
        }};
    }
    macro_rules! rri {
        ($v:ident) => {{
            expect(stmt, 3, "rd, rs, imm", line)?;
            Instr::$v { d: reg(0)?, s: reg(1)?, imm: imm(2)? }
        }};
    }
    macro_rules! shift {
        ($v:ident) => {{
            expect(stmt, 3, "rd, rs, shamt", line)?;
            Instr::$v { d: reg(0)?, s: reg(1)?, shamt: parse_shamt(&ops[2], line)? }
        }};
    }
    Ok(match stmt.mnemonic.as_str() {
        "nop" => {
            expect(stmt, 0, "", line)?;
            Instr::Nop
        }
        "halt" => {
            expect(stmt, 0, "", line)?;
            Instr::Halt
        }
        "add" => rrr!(Add),
        "sub" => rrr!(Sub),
        "and" => rrr!(And),
        "or" => rrr!(Or),
        "xor" => rrr!(Xor),
        "sll" => rrr!(Sll),
        "srl" => rrr!(Srl),
        "sra" => rrr!(Sra),
        "slt" => rrr!(Slt),
        "addi" => rri!(Addi),
        "andi" => rri!(Andi),
        "ori" => rri!(Ori),
        "xori" => rri!(Xori),
        "slti" => rri!(Slti),
        "slli" => shift!(Slli),
        "srli" => shift!(Srli),
        "srai" => shift!(Srai),
        "li" => {
            expect(stmt, 2, "rd, imm", line)?;
            Instr::Li { d: reg(0)?, imm: imm(1)? }
        }
        "lw" => {
            expect(stmt, 2, "rd, off(base)", line)?;
            let (off, base) = parse_mem(&ops[1], line)?;
            Instr::Lw { d: reg(0)?, base, off }
        }
        "sw" => {
            expect(stmt, 2, "rs, off(base)", line)?;
            let (off, base) = parse_mem(&ops[1], line)?;
            Instr::Sw { s: reg(0)?, base, off }
        }
        "mov" => {
            expect(stmt, 2, "rd, rs", line)?;
            Instr::Mov { d: reg(0)?, s: reg(1)? }
        }
        "beq" | "bne" => {
            expect(stmt, 3, "rs, rt, target", line)?;
            let target = resolve_target(&ops[2], labels, line)?;
            let off = branch_offset(addr, target, line)?;
            if stmt.mnemonic == "beq" {
                Instr::Beq { s: reg(0)?, t: reg(1)?, off }
            } else {
                Instr::Bne { s: reg(0)?, t: reg(1)?, off }
            }
        }
        "jmp" | "j" => {
            expect(stmt, 1, "target", line)?;
            Instr::Jmp { target: resolve_target(&ops[0], labels, line)? }
        }
        "jal" => {
            expect(stmt, 2, "rd, target", line)?;
            Instr::Jal { d: reg(0)?, target: resolve_target(&ops[1], labels, line)? }
        }
        "jr" => {
            expect(stmt, 1, "rs", line)?;
            Instr::Jr { s: reg(0)? }
        }
        "jalr" => {
            expect(stmt, 2, "rd, rs", line)?;
            Instr::Jalr { d: reg(0)?, s: reg(1)? }
        }
        "ldrrm" => {
            expect(stmt, 1, "rs", line)?;
            Instr::Ldrrm { s: reg(0)? }
        }
        "mfpsw" => {
            expect(stmt, 1, "rd", line)?;
            Instr::Mfpsw { d: reg(0)? }
        }
        "mtpsw" => {
            expect(stmt, 1, "rs", line)?;
            Instr::Mtpsw { s: reg(0)? }
        }
        other => {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::UnknownMnemonic(other.to_string()),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn assembles_figure3_yield_sequence() {
        let p = assemble(
            r#"
            yield:
                ldrrm r2
                mfpsw r1
                mtpsw r1
                jr r0
            "#,
        )
        .unwrap();
        assert_eq!(p.label("yield"), Some(0));
        let texts: Vec<String> =
            p.words().iter().map(|w| decode(*w).unwrap().to_string()).collect();
        assert_eq!(texts, vec!["ldrrm r2", "mfpsw r1", "mtpsw r1", "jr r0"]);
    }

    #[test]
    fn labels_on_same_line_as_instruction() {
        let p = assemble("loop: addi r1, r1, -1\n bne r1, r0, loop\n halt").unwrap();
        assert_eq!(p.label("loop"), Some(0));
        assert_eq!(p.len(), 3);
        match decode(p.words()[1]).unwrap() {
            Instr::Bne { off, .. } => assert_eq!(off, -2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn branch_offsets_respect_origin() {
        let p = assemble_at("loop: beq r0, r0, loop", 100).unwrap();
        assert_eq!(p.label("loop"), Some(100));
        match decode(p.words()[0]).unwrap() {
            Instr::Beq { off, .. } => assert_eq!(off, -1),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("jmp end\n nop\n end: halt").unwrap();
        match decode(p.words()[0]).unwrap() {
            Instr::Jmp { target } => assert_eq!(target, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw r1, -4(r2)\n sw r3, (r4)\n lw r5, 0x10(r6)").unwrap();
        assert_eq!(decode(p.words()[0]).unwrap().to_string(), "lw r1, -4(r2)");
        assert_eq!(decode(p.words()[1]).unwrap().to_string(), "sw r3, 0(r4)");
        assert_eq!(decode(p.words()[2]).unwrap().to_string(), "lw r5, 16(r6)");
    }

    #[test]
    fn multi_rrm_selector_syntax() {
        let p = assemble("add c0.r3, c0.r4, c1.r6").unwrap();
        match decode(p.words()[0]).unwrap() {
            Instr::Add { d, s, t } => {
                assert_eq!((d.selector(), d.offset()), (0, 3));
                assert_eq!((s.selector(), s.offset()), (0, 4));
                assert_eq!((t.selector(), t.offset()), (1, 6));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn directives() {
        let p = assemble(".word 0xdeadbeef\n .space 3\n halt").unwrap();
        assert_eq!(p.words()[0], 0xdead_beef);
        assert_eq!(&p.words()[1..4], &[0, 0, 0]);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn comments_in_all_styles() {
        let p = assemble("nop ; one\nnop # two\nnop // three\n").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn error_reporting() {
        let err = assemble("frob r1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));

        let err = assemble("nop\n add r1, r2").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::BadOperands { .. }));

        let err = assemble("add r1, r2, r99").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));

        let err = assemble("jmp nowhere").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedLabel(_)));

        let err = assemble("x: nop\n x: nop").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));

        let err = assemble("li r1, 100000").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn li32_expands_to_five_words_and_labels_stay_correct() {
        let p = assemble(
            r#"
            li32 r1, 0x11111111
            target:
                nop
                jmp target
            "#,
        )
        .unwrap();
        assert_eq!(p.label("target"), Some(5));
        assert_eq!(p.len(), 7);
        match decode(p.words()[6]).unwrap() {
            Instr::Jmp { target } => assert_eq!(target, 5),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn li32_rejects_bad_operands() {
        assert!(assemble("li32 r1").is_err());
        assert!(assemble("li32 r1, 0x1FFFFFFFF").is_err());
        assert!(assemble("li32 r99, 5").is_err());
    }

    #[test]
    fn label_only_lines_and_blank_lines() {
        let p = assemble("a:\n\nb:\n nop\n").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
        assert_eq!(p.len(), 1);
    }
}
