//! Fixed-field binary encoding of instructions.
//!
//! Every instruction is one 32-bit word:
//!
//! ```text
//!  31      26 25     20 19     14 13      8 7        0
//! +----------+---------+---------+---------+----------+
//! |  opcode  | field A | field B | field C |          |
//! +----------+---------+---------+---------+----------+
//!            |<------ imm14 (bits 0..14) ----->|
//!            |<--------- addr20 (bits 0..20) --------->|
//! ```
//!
//! Register operands always occupy the same field positions regardless of
//! opcode — the "fixed-field decoding scheme" the paper relies on so that the
//! relocation OR can run in parallel with opcode decode. [`relocate_word`]
//! performs that OR directly on the encoded word, exactly as the hardware of
//! Figure 2 would; the machine crate instead relocates on the decoded
//! representation so that absolute registers wider than an operand field (the
//! paper's "widened internal paths") are representable.

use crate::error::{DecodeError, EncodeError};
use crate::instr::{Instr, Opcode, RegField, ADDR20_LIMIT, IMM14_MAX, IMM14_MIN, SHAMT_LIMIT};
use crate::reg::{ContextReg, Rrm};

const FIELD_MASK: u32 = 0x3f;
const IMM14_MASK: u32 = 0x3fff;
const ADDR20_MASK: u32 = 0xf_ffff;

fn field(word: u32, f: RegField) -> ContextReg {
    // A 6-bit field value is always a valid ContextReg.
    ContextReg::new(((word >> f.shift()) & FIELD_MASK) as u8).expect("6-bit field")
}

fn put_field(r: ContextReg, f: RegField) -> u32 {
    u32::from(r.number()) << f.shift()
}

fn imm14(word: u32) -> i32 {
    // Sign-extend the low 14 bits.
    ((word & IMM14_MASK) as i32) << 18 >> 18
}

fn put_imm14(imm: i32) -> Result<u32, EncodeError> {
    if (IMM14_MIN..=IMM14_MAX).contains(&imm) {
        Ok((imm as u32) & IMM14_MASK)
    } else {
        Err(EncodeError::ImmediateOutOfRange { imm })
    }
}

fn put_shamt(shamt: u8) -> Result<u32, EncodeError> {
    if shamt < SHAMT_LIMIT {
        Ok(u32::from(shamt))
    } else {
        Err(EncodeError::ShamtOutOfRange { shamt })
    }
}

fn put_addr20(target: u32) -> Result<u32, EncodeError> {
    if target < ADDR20_LIMIT {
        Ok(target & ADDR20_MASK)
    } else {
        Err(EncodeError::TargetOutOfRange { target })
    }
}

/// Encodes an instruction into its 32-bit word.
///
/// # Errors
///
/// Returns an error if an immediate, shift amount, or jump target does not
/// fit its field. Register operands are valid by construction.
///
/// # Example
///
/// ```
/// use rr_isa::{encode, decode, Instr, ContextReg};
///
/// let i = Instr::Addi {
///     d: ContextReg::new(1)?,
///     s: ContextReg::new(2)?,
///     imm: -7,
/// };
/// let word = encode(&i)?;
/// assert_eq!(decode(word)?, i);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode(instr: &Instr<ContextReg>) -> Result<u32, EncodeError> {
    use RegField::{A, B, C};
    let op = (instr.opcode() as u32) << 26;
    Ok(match *instr {
        Instr::Nop | Instr::Halt => op,
        Instr::Add { d, s, t }
        | Instr::Sub { d, s, t }
        | Instr::And { d, s, t }
        | Instr::Or { d, s, t }
        | Instr::Xor { d, s, t }
        | Instr::Sll { d, s, t }
        | Instr::Srl { d, s, t }
        | Instr::Sra { d, s, t }
        | Instr::Slt { d, s, t } => op | put_field(d, A) | put_field(s, B) | put_field(t, C),
        Instr::Addi { d, s, imm }
        | Instr::Andi { d, s, imm }
        | Instr::Ori { d, s, imm }
        | Instr::Xori { d, s, imm }
        | Instr::Slti { d, s, imm } => {
            op | put_field(d, A) | put_field(s, B) | put_imm14(imm)?
        }
        Instr::Slli { d, s, shamt } | Instr::Srli { d, s, shamt } | Instr::Srai { d, s, shamt } => {
            op | put_field(d, A) | put_field(s, B) | put_shamt(shamt)?
        }
        Instr::Li { d, imm } => op | put_field(d, A) | put_imm14(imm)?,
        Instr::Lw { d, base, off } => op | put_field(d, A) | put_field(base, B) | put_imm14(off)?,
        Instr::Sw { s, base, off } => op | put_field(s, A) | put_field(base, B) | put_imm14(off)?,
        Instr::Mov { d, s } => op | put_field(d, A) | put_field(s, B),
        Instr::Beq { s, t, off } | Instr::Bne { s, t, off } => {
            op | put_field(s, A) | put_field(t, B) | put_imm14(off)?
        }
        Instr::Jmp { target } => op | put_addr20(target)?,
        Instr::Jal { d, target } => op | put_field(d, A) | put_addr20(target)?,
        Instr::Jr { s } => op | put_field(s, B),
        Instr::Jalr { d, s } => op | put_field(d, A) | put_field(s, B),
        Instr::Ldrrm { s } => op | put_field(s, B),
        Instr::Mfpsw { d } => op | put_field(d, A),
        Instr::Mtpsw { s } => op | put_field(s, B),
    })
}

/// Decodes a 32-bit word into an instruction with context-relative operands.
///
/// # Errors
///
/// Returns [`DecodeError::UnknownOpcode`] if the opcode field does not name an
/// instruction.
pub fn decode(word: u32) -> Result<Instr<ContextReg>, DecodeError> {
    use RegField::{A, B, C};
    let raw_op = (word >> 26) as u8;
    let op = Opcode::from_u8(raw_op)
        .ok_or(DecodeError::UnknownOpcode { opcode: raw_op, word })?;
    Ok(match op {
        Opcode::Nop => Instr::Nop,
        Opcode::Halt => Instr::Halt,
        Opcode::Add => Instr::Add { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Sub => Instr::Sub { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::And => Instr::And { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Or => Instr::Or { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Xor => Instr::Xor { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Sll => Instr::Sll { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Srl => Instr::Srl { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Sra => Instr::Sra { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Slt => Instr::Slt { d: field(word, A), s: field(word, B), t: field(word, C) },
        Opcode::Addi => Instr::Addi { d: field(word, A), s: field(word, B), imm: imm14(word) },
        Opcode::Andi => Instr::Andi { d: field(word, A), s: field(word, B), imm: imm14(word) },
        Opcode::Ori => Instr::Ori { d: field(word, A), s: field(word, B), imm: imm14(word) },
        Opcode::Xori => Instr::Xori { d: field(word, A), s: field(word, B), imm: imm14(word) },
        Opcode::Slti => Instr::Slti { d: field(word, A), s: field(word, B), imm: imm14(word) },
        Opcode::Slli => Instr::Slli {
            d: field(word, A),
            s: field(word, B),
            shamt: (word & 0x1f) as u8,
        },
        Opcode::Srli => Instr::Srli {
            d: field(word, A),
            s: field(word, B),
            shamt: (word & 0x1f) as u8,
        },
        Opcode::Srai => Instr::Srai {
            d: field(word, A),
            s: field(word, B),
            shamt: (word & 0x1f) as u8,
        },
        Opcode::Li => Instr::Li { d: field(word, A), imm: imm14(word) },
        Opcode::Lw => Instr::Lw { d: field(word, A), base: field(word, B), off: imm14(word) },
        Opcode::Sw => Instr::Sw { s: field(word, A), base: field(word, B), off: imm14(word) },
        Opcode::Mov => Instr::Mov { d: field(word, A), s: field(word, B) },
        Opcode::Beq => Instr::Beq { s: field(word, A), t: field(word, B), off: imm14(word) },
        Opcode::Bne => Instr::Bne { s: field(word, A), t: field(word, B), off: imm14(word) },
        Opcode::Jmp => Instr::Jmp { target: word & ADDR20_MASK },
        Opcode::Jal => Instr::Jal { d: field(word, A), target: word & ADDR20_MASK },
        Opcode::Jr => Instr::Jr { s: field(word, B) },
        Opcode::Jalr => Instr::Jalr { d: field(word, A), s: field(word, B) },
        Opcode::Ldrrm => Instr::Ldrrm { s: field(word, B) },
        Opcode::Mfpsw => Instr::Mfpsw { d: field(word, A) },
        Opcode::Mtpsw => Instr::Mtpsw { s: field(word, B) },
    })
}

/// Performs register relocation directly on an encoded word, as the decode
/// hardware of Figure 2 does: a bitwise OR of the RRM into every register
/// operand field of the instruction.
///
/// Returns `None` when the mask needs more than [`crate::OPERAND_BITS`] bits,
/// in which case relocated operands no longer fit in the instruction word and
/// the widened-datapath route ([`Instr::try_map_registers`] on the decoded
/// form) must be used instead.
///
/// # Example
///
/// ```
/// use rr_isa::{assemble, decode, relocate_word, Rrm};
///
/// let p = assemble("add r1, r2, r3")?;
/// let rrm = Rrm::for_context(40, 8)?;
/// let relocated = relocate_word(p.words()[0], rrm).expect("mask fits the field");
/// assert_eq!(decode(relocated)?.to_string(), "add r41, r42, r43");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn relocate_word(word: u32, rrm: Rrm) -> Option<u32> {
    let mask = u32::from(rrm.raw());
    if mask > FIELD_MASK {
        return None;
    }
    let raw_op = (word >> 26) as u8;
    let op = Opcode::from_u8(raw_op)?;
    let mut out = word;
    for f in op.register_fields() {
        out |= mask << f.shift();
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::MAX_CONTEXT_SIZE;

    fn r(n: u8) -> ContextReg {
        ContextReg::new(n).unwrap()
    }

    fn samples() -> Vec<Instr<ContextReg>> {
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Add { d: r(1), s: r(2), t: r(3) },
            Instr::Sub { d: r(63), s: r(0), t: r(31) },
            Instr::And { d: r(4), s: r(5), t: r(6) },
            Instr::Or { d: r(4), s: r(5), t: r(6) },
            Instr::Xor { d: r(4), s: r(5), t: r(6) },
            Instr::Sll { d: r(4), s: r(5), t: r(6) },
            Instr::Srl { d: r(4), s: r(5), t: r(6) },
            Instr::Sra { d: r(4), s: r(5), t: r(6) },
            Instr::Slt { d: r(4), s: r(5), t: r(6) },
            Instr::Addi { d: r(1), s: r(2), imm: -8192 },
            Instr::Andi { d: r(1), s: r(2), imm: 8191 },
            Instr::Ori { d: r(1), s: r(2), imm: 0 },
            Instr::Xori { d: r(1), s: r(2), imm: -1 },
            Instr::Slti { d: r(1), s: r(2), imm: 100 },
            Instr::Slli { d: r(1), s: r(2), shamt: 31 },
            Instr::Srli { d: r(1), s: r(2), shamt: 0 },
            Instr::Srai { d: r(1), s: r(2), shamt: 16 },
            Instr::Li { d: r(9), imm: -1 },
            Instr::Lw { d: r(1), base: r(2), off: 12 },
            Instr::Sw { s: r(1), base: r(2), off: -12 },
            Instr::Mov { d: r(7), s: r(8) },
            Instr::Beq { s: r(1), t: r(2), off: -5 },
            Instr::Bne { s: r(1), t: r(2), off: 5 },
            Instr::Jmp { target: 0xf_ffff },
            Instr::Jal { d: r(0), target: 123 },
            Instr::Jr { s: r(0) },
            Instr::Jalr { d: r(0), s: r(1) },
            Instr::Ldrrm { s: r(2) },
            Instr::Mfpsw { d: r(1) },
            Instr::Mtpsw { s: r(1) },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for i in samples() {
            let word = encode(&i).unwrap();
            assert_eq!(decode(word).unwrap(), i, "round trip failed for {i}");
        }
    }

    #[test]
    fn encode_rejects_out_of_range_fields() {
        assert!(matches!(
            encode(&Instr::Addi { d: r(0), s: r(0), imm: 8192 }),
            Err(EncodeError::ImmediateOutOfRange { imm: 8192 })
        ));
        assert!(matches!(
            encode(&Instr::Addi { d: r(0), s: r(0), imm: -8193 }),
            Err(EncodeError::ImmediateOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Instr::Slli { d: r(0), s: r(0), shamt: 32 }),
            Err(EncodeError::ShamtOutOfRange { shamt: 32 })
        ));
        assert!(matches!(
            encode(&Instr::Jmp { target: 1 << 20 }),
            Err(EncodeError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn decode_rejects_unknown_opcodes() {
        let word = 32u32 << 26;
        assert!(matches!(
            decode(word),
            Err(DecodeError::UnknownOpcode { opcode: 32, .. })
        ));
    }

    #[test]
    fn relocate_word_matches_structural_relocation() {
        // For masks that fit the operand field, in-word relocation and the
        // widened-path relocation agree.
        let rrm = Rrm::for_context(40, 8).unwrap();
        for i in samples() {
            // Skip instructions whose operands would escape the field after OR
            // (operand numbers here are < 24 except the deliberate r63 case).
            if i.registers().iter().any(|x| x.number() >= 8) {
                continue;
            }
            let word = encode(&i).unwrap();
            let relocated = relocate_word(word, rrm).unwrap();
            let structural = i.map_registers(|x| {
                ContextReg::new(rrm.relocate(x).0 as u8).unwrap()
            });
            assert_eq!(decode(relocated).unwrap(), structural, "mismatch for {i}");
        }
    }

    #[test]
    fn relocate_word_refuses_wide_masks() {
        let word = encode(&Instr::Nop).unwrap();
        assert!(relocate_word(word, Rrm::from_raw(MAX_CONTEXT_SIZE as u16)).is_none());
        assert!(relocate_word(word, Rrm::from_raw(63)).is_some());
    }

    #[test]
    fn relocation_does_not_touch_non_register_fields() {
        let i = Instr::Addi { d: r(1), s: r(2), imm: -1 };
        let word = encode(&i).unwrap();
        let relocated = relocate_word(word, Rrm::from_raw(8)).unwrap();
        match decode(relocated).unwrap() {
            Instr::Addi { imm, .. } => assert_eq!(imm, -1),
            other => panic!("unexpected {other}"),
        }
    }
}
