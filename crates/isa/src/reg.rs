//! Typed register operands and relocation masks.
//!
//! The newtypes in this module keep the two register spaces of the paper
//! statically distinct: instructions carry [`ContextReg`] operands, the
//! register file is indexed by [`AbsReg`], and only an [`Rrm`] can convert one
//! into the other (the decode-stage bitwise OR of Figure 2).

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::error::RegisterError;

/// Width in bits of a register operand field in the instruction encoding.
///
/// This is the paper's `w`: it bounds the number of *context-relative*
/// registers an instruction can name, and therefore places an upper limit of
/// `2^w` = [`MAX_CONTEXT_SIZE`] on the size of a single context. A machine may
/// be configured with a smaller effective operand width, but the binary
/// encoding always reserves this many bits per operand (fixed-field decoding).
pub const OPERAND_BITS: u32 = 6;

/// Maximum size of a single context, `2^OPERAND_BITS` registers.
pub const MAX_CONTEXT_SIZE: u32 = 1 << OPERAND_BITS;

/// A context-relative register operand, as encoded in an instruction.
///
/// Values range over `0..MAX_CONTEXT_SIZE`. With the multiple-RRM extension
/// (paper §5.3) the high-order operand bit acts as a mask *selector* rather
/// than part of the register number; see
/// [`Rrm::relocate`] and `rr-machine`'s relocation unit.
///
/// # Example
///
/// ```
/// use rr_isa::ContextReg;
///
/// let r5 = ContextReg::new(5)?;
/// assert_eq!(r5.number(), 5);
/// assert_eq!(r5.to_string(), "r5");
/// # Ok::<(), rr_isa::RegisterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContextReg(u8);

impl ContextReg {
    /// The lowest context-relative register, `r0`.
    pub const R0: ContextReg = ContextReg(0);

    /// Creates a context-relative register operand.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError::OperandOutOfRange`] if `number` does not fit
    /// in [`OPERAND_BITS`] bits.
    pub fn new(number: u8) -> Result<Self, RegisterError> {
        if u32::from(number) < MAX_CONTEXT_SIZE {
            Ok(ContextReg(number))
        } else {
            Err(RegisterError::OperandOutOfRange {
                operand: number,
                max: MAX_CONTEXT_SIZE as u8 - 1,
            })
        }
    }

    /// Creates a register operand with the multi-RRM selector bit applied.
    ///
    /// `selector` chooses which relocation mask relocates this operand when
    /// the machine has the multiple-active-contexts extension enabled; the
    /// assembler surfaces this as `c1.rN` syntax.
    ///
    /// # Errors
    ///
    /// Returns an error if `number` does not fit in the remaining
    /// `OPERAND_BITS - 1` offset bits, or if `selector > 1`.
    pub fn with_selector(number: u8, selector: u8) -> Result<Self, RegisterError> {
        if selector > 1 {
            return Err(RegisterError::BadSelector { selector });
        }
        let offset_bits = OPERAND_BITS - 1;
        if u32::from(number) >= (1 << offset_bits) {
            return Err(RegisterError::OperandOutOfRange {
                operand: number,
                max: (1u8 << offset_bits) - 1,
            });
        }
        Ok(ContextReg(number | (selector << offset_bits)))
    }

    /// The raw operand value, including any selector bit.
    #[inline]
    pub fn number(self) -> u8 {
        self.0
    }

    /// The multi-RRM selector bit (the high-order operand bit).
    ///
    /// Only meaningful on machines with the multiple-RRM extension enabled;
    /// otherwise the bit is ordinary operand payload.
    #[inline]
    pub fn selector(self) -> u8 {
        self.0 >> (OPERAND_BITS - 1)
    }

    /// The operand value with the selector bit stripped.
    #[inline]
    pub fn offset(self) -> u8 {
        self.0 & ((1 << (OPERAND_BITS - 1)) - 1)
    }
}

impl fmt::Display for ContextReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl TryFrom<u8> for ContextReg {
    type Error = RegisterError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        ContextReg::new(value)
    }
}

/// An absolute register number, the result of relocating a [`ContextReg`].
///
/// Absolute numbers index the physical register file and may need more bits
/// than an instruction operand field provides (the paper's "widened internal
/// paths" after decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AbsReg(pub u16);

impl AbsReg {
    /// The absolute register number.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for AbsReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<AbsReg> for u16 {
    fn from(r: AbsReg) -> u16 {
        r.0
    }
}

/// A register relocation mask (RRM).
///
/// The RRM is held in a special hardware register of `ceil(log2 n)` bits for a
/// machine with `n` general registers, and is loaded by the `LDRRM`
/// instruction. During decode every register operand is bitwise-OR'd with the
/// RRM (Figure 2 of the paper).
///
/// A mask that is the base address of a *size-aligned* context has its low
/// `log2(size)` bits clear, which is what makes OR equivalent to ADD for
/// in-context operands.
///
/// # Example
///
/// Figure 1(a) of the paper: 128 registers, a context of size 8 based at
/// register 40; context-relative register 5 relocates to absolute register 45.
///
/// ```
/// use rr_isa::{ContextReg, Rrm};
///
/// let rrm = Rrm::for_context(40, 8)?;
/// let abs = rrm.relocate(ContextReg::new(5)?);
/// assert_eq!(abs.0, 45);
/// # Ok::<(), rr_isa::RegisterError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Rrm(u16);

impl Rrm {
    /// The zero mask: context-relative numbers are absolute numbers.
    pub const ZERO: Rrm = Rrm(0);

    /// Creates a mask from a raw value (e.g. read from a general register by
    /// `LDRRM`). Any value is a valid mask; whether it denotes a well-formed
    /// context base is a software convention checked by [`Rrm::for_context`].
    #[inline]
    pub fn from_raw(value: u16) -> Self {
        Rrm(value)
    }

    /// The raw mask value.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Creates the mask for a context of `size` registers based at absolute
    /// register `base`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `size` is a power of two no larger than
    /// [`MAX_CONTEXT_SIZE`] and `base` is aligned to `size` (the alignment is
    /// what makes the decode-stage OR behave like an ADD).
    pub fn for_context(base: u16, size: u32) -> Result<Self, RegisterError> {
        if !size.is_power_of_two() || size > MAX_CONTEXT_SIZE {
            return Err(RegisterError::BadContextSize { size });
        }
        if u32::from(base) % size != 0 {
            return Err(RegisterError::MisalignedBase { base, size });
        }
        Ok(Rrm(base))
    }

    /// Relocates a context-relative operand: the decode-stage bitwise OR.
    #[inline]
    pub fn relocate(self, op: ContextReg) -> AbsReg {
        AbsReg(self.0 | u16::from(op.number()))
    }

    /// Relocates only the offset bits of an operand, for the multiple-RRM
    /// extension where the high operand bit is a selector.
    #[inline]
    pub fn relocate_offset(self, op: ContextReg) -> AbsReg {
        AbsReg(self.0 | u16::from(op.offset()))
    }

    /// The largest context size this mask can serve without offset bits
    /// colliding with base bits: `2^(trailing zeros)`, capped at
    /// [`MAX_CONTEXT_SIZE`].
    ///
    /// The mask `0` (base register 0) can serve the maximum size. This is the
    /// quantity a MUX-based "bounds checking" decode unit (paper footnote 3)
    /// can infer from the mask alone.
    #[inline]
    pub fn natural_capacity(self) -> u32 {
        if self.0 == 0 {
            MAX_CONTEXT_SIZE
        } else {
            (1u32 << self.0.trailing_zeros()).min(MAX_CONTEXT_SIZE)
        }
    }
}

impl fmt::Display for Rrm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RRM({:#09b})", self.0)
    }
}

impl fmt::Binary for Rrm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Rrm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Rrm> for u16 {
    fn from(m: Rrm) -> u16 {
        m.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_reg_bounds() {
        assert!(ContextReg::new(0).is_ok());
        assert!(ContextReg::new(63).is_ok());
        assert!(ContextReg::new(64).is_err());
        assert!(ContextReg::new(255).is_err());
    }

    #[test]
    fn selector_split() {
        let r = ContextReg::with_selector(3, 1).unwrap();
        assert_eq!(r.number(), 35);
        assert_eq!(r.selector(), 1);
        assert_eq!(r.offset(), 3);
        let r = ContextReg::with_selector(3, 0).unwrap();
        assert_eq!(r.number(), 3);
        assert_eq!(r.selector(), 0);
        assert!(ContextReg::with_selector(32, 0).is_err());
        assert!(ContextReg::with_selector(0, 2).is_err());
    }

    #[test]
    fn figure_1a_relocation() {
        // 128 registers, context of size 8 at base 40: r5 -> R45.
        let rrm = Rrm::for_context(40, 8).unwrap();
        assert_eq!(rrm.relocate(ContextReg::new(5).unwrap()).0, 45);
    }

    #[test]
    fn figure_1b_relocation() {
        // Context of size 16 at base 32: r14 -> R46.
        let rrm = Rrm::for_context(32, 16).unwrap();
        assert_eq!(rrm.relocate(ContextReg::new(14).unwrap()).0, 46);
    }

    #[test]
    fn misaligned_base_rejected() {
        assert!(Rrm::for_context(44, 8).is_err());
        assert!(Rrm::for_context(44, 4).is_ok());
    }

    #[test]
    fn bad_context_sizes_rejected() {
        assert!(Rrm::for_context(0, 3).is_err());
        assert!(Rrm::for_context(0, 0).is_err());
        assert!(Rrm::for_context(0, 128).is_err());
        assert!(Rrm::for_context(0, 64).is_ok());
    }

    #[test]
    fn or_equals_add_for_aligned_contexts() {
        for k in 0..=6u32 {
            let size = 1u32 << k;
            for base in (0..128).step_by(size as usize) {
                let rrm = Rrm::for_context(base as u16, size).unwrap();
                for off in 0..size.min(MAX_CONTEXT_SIZE) {
                    let op = ContextReg::new(off as u8).unwrap();
                    assert_eq!(u32::from(rrm.relocate(op).0), base + off);
                }
            }
        }
    }

    #[test]
    fn natural_capacity() {
        assert_eq!(Rrm::from_raw(0).natural_capacity(), 64);
        assert_eq!(Rrm::from_raw(40).natural_capacity(), 8);
        assert_eq!(Rrm::from_raw(32).natural_capacity(), 32);
        assert_eq!(Rrm::from_raw(96).natural_capacity(), 32);
        assert_eq!(Rrm::from_raw(1).natural_capacity(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ContextReg::new(7).unwrap().to_string(), "r7");
        assert_eq!(AbsReg(45).to_string(), "R45");
        assert_eq!(format!("{:b}", Rrm::from_raw(40)), "101000");
    }
}
