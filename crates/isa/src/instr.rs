//! The instruction set, generic over register representation.
//!
//! [`Instr<R>`] is parameterized by its register operand type so that the
//! pipeline stages of the machine are visible in the types:
//!
//! * after *decode*, an instruction is an `Instr<ContextReg>` carrying
//!   context-relative operands;
//! * after *relocation* (the decode-stage OR with the RRM), it is an
//!   `Instr<AbsReg>` carrying absolute register numbers.
//!
//! The ISA is a minimal load/store RISC in the spirit of the paper's examples:
//! three-operand ALU instructions, immediates, loads/stores, branches, jumps
//! with and without linking, and the three relocation/status instructions
//! `ldrrm`, `mfpsw`, `mtpsw`.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Inclusive upper bound of a signed 14-bit immediate.
pub const IMM14_MAX: i32 = (1 << 13) - 1;
/// Inclusive lower bound of a signed 14-bit immediate.
pub const IMM14_MIN: i32 = -(1 << 13);
/// Exclusive upper bound of a 20-bit absolute jump target (word address).
pub const ADDR20_LIMIT: u32 = 1 << 20;
/// Exclusive upper bound of a shift amount.
pub const SHAMT_LIMIT: u8 = 32;

/// One machine instruction with register operands of type `R`.
///
/// `R` is [`crate::ContextReg`] for encoded/decoded instructions and
/// [`crate::AbsReg`] once the relocation unit has run. All immediates are
/// signed 14-bit unless noted; branch offsets are PC-relative word offsets
/// (relative to the instruction *after* the branch); jump targets are absolute
/// word addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr<R> {
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
    /// `d = s + t` (wrapping).
    Add { d: R, s: R, t: R },
    /// `d = s - t` (wrapping).
    Sub { d: R, s: R, t: R },
    /// `d = s & t`.
    And { d: R, s: R, t: R },
    /// `d = s | t`.
    Or { d: R, s: R, t: R },
    /// `d = s ^ t`.
    Xor { d: R, s: R, t: R },
    /// `d = s << (t & 31)`.
    Sll { d: R, s: R, t: R },
    /// `d = s >> (t & 31)` (logical).
    Srl { d: R, s: R, t: R },
    /// `d = (s as i32) >> (t & 31)` (arithmetic).
    Sra { d: R, s: R, t: R },
    /// `d = (s as i32) < (t as i32)` as 0/1.
    Slt { d: R, s: R, t: R },
    /// `d = s + imm` (wrapping).
    Addi { d: R, s: R, imm: i32 },
    /// `d = s & imm` (immediate sign-extended).
    Andi { d: R, s: R, imm: i32 },
    /// `d = s | imm` (immediate sign-extended).
    Ori { d: R, s: R, imm: i32 },
    /// `d = s ^ imm` (immediate sign-extended).
    Xori { d: R, s: R, imm: i32 },
    /// `d = (s as i32) < imm` as 0/1.
    Slti { d: R, s: R, imm: i32 },
    /// `d = s << shamt`.
    Slli { d: R, s: R, shamt: u8 },
    /// `d = s >> shamt` (logical).
    Srli { d: R, s: R, shamt: u8 },
    /// `d = (s as i32) >> shamt` (arithmetic).
    Srai { d: R, s: R, shamt: u8 },
    /// `d = imm` (sign-extended 14-bit immediate).
    Li { d: R, imm: i32 },
    /// `d = mem[s + off]` (word-addressed).
    Lw { d: R, base: R, off: i32 },
    /// `mem[base + off] = s` (word-addressed).
    Sw { s: R, base: R, off: i32 },
    /// `d = s`.
    Mov { d: R, s: R },
    /// Branch to `pc + 1 + off` if `s == t`.
    Beq { s: R, t: R, off: i32 },
    /// Branch to `pc + 1 + off` if `s != t`.
    Bne { s: R, t: R, off: i32 },
    /// Unconditional jump to absolute word address `target`.
    Jmp { target: u32 },
    /// Jump to `target`, storing the return address (`pc + 1`) in `d`.
    Jal { d: R, target: u32 },
    /// Jump to the address held in register `s`.
    Jr { s: R },
    /// Jump to the address in `s`, storing the return address in `d`.
    Jalr { d: R, s: R },
    /// Load the register relocation mask from the low bits of `s`.
    ///
    /// Takes effect after the machine's configured number of delay slots.
    /// With the multiple-RRM extension, a single `ldrrm` loads every mask
    /// from bit-fields of `s`.
    Ldrrm { s: R },
    /// `d = PSW` (move from processor status word).
    Mfpsw { d: R },
    /// `PSW = s` (move to processor status word).
    Mtpsw { s: R },
}

/// Instruction opcodes as stored in bits `[26, 32)` of the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    Nop = 0,
    Halt = 1,
    Add = 2,
    Sub = 3,
    And = 4,
    Or = 5,
    Xor = 6,
    Sll = 7,
    Srl = 8,
    Sra = 9,
    Slt = 10,
    Addi = 11,
    Andi = 12,
    Ori = 13,
    Xori = 14,
    Slti = 15,
    Slli = 16,
    Srli = 17,
    Srai = 18,
    Li = 19,
    Lw = 20,
    Sw = 21,
    Mov = 22,
    Beq = 23,
    Bne = 24,
    Jmp = 25,
    Jal = 26,
    Jr = 27,
    Jalr = 28,
    Ldrrm = 29,
    Mfpsw = 30,
    Mtpsw = 31,
}

impl Opcode {
    /// All opcodes, in numeric order.
    pub const ALL: [Opcode; 32] = [
        Opcode::Nop,
        Opcode::Halt,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slti,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Li,
        Opcode::Lw,
        Opcode::Sw,
        Opcode::Mov,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Jmp,
        Opcode::Jal,
        Opcode::Jr,
        Opcode::Jalr,
        Opcode::Ldrrm,
        Opcode::Mfpsw,
        Opcode::Mtpsw,
    ];

    /// Converts a raw opcode field value.
    pub fn from_u8(value: u8) -> Option<Opcode> {
        Opcode::ALL.get(usize::from(value)).copied()
    }

    /// Which of the three fixed register fields (A, B, C) this opcode uses.
    ///
    /// This table is the hardware's "fixed-field decoding" knowledge: the
    /// relocation unit ORs the RRM into exactly these fields (Figure 2 of the
    /// paper).
    pub fn register_fields(self) -> &'static [RegField] {
        use RegField::*;
        match self {
            Opcode::Nop | Opcode::Halt | Opcode::Jmp => &[],
            Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Sll
            | Opcode::Srl
            | Opcode::Sra
            | Opcode::Slt => &[A, B, C],
            Opcode::Addi
            | Opcode::Andi
            | Opcode::Ori
            | Opcode::Xori
            | Opcode::Slti
            | Opcode::Slli
            | Opcode::Srli
            | Opcode::Srai
            | Opcode::Lw
            | Opcode::Sw
            | Opcode::Mov
            | Opcode::Beq
            | Opcode::Bne
            | Opcode::Jalr => &[A, B],
            Opcode::Li | Opcode::Jal | Opcode::Mfpsw => &[A],
            Opcode::Jr | Opcode::Ldrrm | Opcode::Mtpsw => &[B],
        }
    }

    /// The lowercase mnemonic, as accepted by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Halt => "halt",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Sll => "sll",
            Opcode::Srl => "srl",
            Opcode::Sra => "sra",
            Opcode::Slt => "slt",
            Opcode::Addi => "addi",
            Opcode::Andi => "andi",
            Opcode::Ori => "ori",
            Opcode::Xori => "xori",
            Opcode::Slti => "slti",
            Opcode::Slli => "slli",
            Opcode::Srli => "srli",
            Opcode::Srai => "srai",
            Opcode::Li => "li",
            Opcode::Lw => "lw",
            Opcode::Sw => "sw",
            Opcode::Mov => "mov",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Jmp => "jmp",
            Opcode::Jal => "jal",
            Opcode::Jr => "jr",
            Opcode::Jalr => "jalr",
            Opcode::Ldrrm => "ldrrm",
            Opcode::Mfpsw => "mfpsw",
            Opcode::Mtpsw => "mtpsw",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One of the three fixed register operand fields in the 32-bit encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegField {
    /// Bits `[20, 26)`; by convention the destination.
    A,
    /// Bits `[14, 20)`; by convention the first source.
    B,
    /// Bits `[8, 14)`; by convention the second source.
    C,
}

impl RegField {
    /// Bit position of the field's least-significant bit in the word.
    pub fn shift(self) -> u32 {
        match self {
            RegField::A => 20,
            RegField::B => 14,
            RegField::C => 8,
        }
    }
}

impl<R> Instr<R> {
    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instr::Nop => Opcode::Nop,
            Instr::Halt => Opcode::Halt,
            Instr::Add { .. } => Opcode::Add,
            Instr::Sub { .. } => Opcode::Sub,
            Instr::And { .. } => Opcode::And,
            Instr::Or { .. } => Opcode::Or,
            Instr::Xor { .. } => Opcode::Xor,
            Instr::Sll { .. } => Opcode::Sll,
            Instr::Srl { .. } => Opcode::Srl,
            Instr::Sra { .. } => Opcode::Sra,
            Instr::Slt { .. } => Opcode::Slt,
            Instr::Addi { .. } => Opcode::Addi,
            Instr::Andi { .. } => Opcode::Andi,
            Instr::Ori { .. } => Opcode::Ori,
            Instr::Xori { .. } => Opcode::Xori,
            Instr::Slti { .. } => Opcode::Slti,
            Instr::Slli { .. } => Opcode::Slli,
            Instr::Srli { .. } => Opcode::Srli,
            Instr::Srai { .. } => Opcode::Srai,
            Instr::Li { .. } => Opcode::Li,
            Instr::Lw { .. } => Opcode::Lw,
            Instr::Sw { .. } => Opcode::Sw,
            Instr::Mov { .. } => Opcode::Mov,
            Instr::Beq { .. } => Opcode::Beq,
            Instr::Bne { .. } => Opcode::Bne,
            Instr::Jmp { .. } => Opcode::Jmp,
            Instr::Jal { .. } => Opcode::Jal,
            Instr::Jr { .. } => Opcode::Jr,
            Instr::Jalr { .. } => Opcode::Jalr,
            Instr::Ldrrm { .. } => Opcode::Ldrrm,
            Instr::Mfpsw { .. } => Opcode::Mfpsw,
            Instr::Mtpsw { .. } => Opcode::Mtpsw,
        }
    }

    /// Applies `f` to every register operand, converting the register
    /// representation.
    ///
    /// This is the structural analogue of the relocation unit: `rr-machine`
    /// relocates a decoded instruction with
    /// `instr.try_map_registers(|r| unit.relocate(r))`.
    pub fn map_registers<S>(self, mut f: impl FnMut(R) -> S) -> Instr<S> {
        // Infallible mapping in terms of the fallible one; the error type is
        // uninhabited so the unwrap cannot fail.
        match self.try_map_registers::<S, core::convert::Infallible>(|r| Ok(f(r))) {
            Ok(i) => i,
        }
    }

    /// Applies a fallible `f` to every register operand.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f` (e.g. a relocation bounds
    /// violation).
    pub fn try_map_registers<S, E>(
        self,
        mut f: impl FnMut(R) -> Result<S, E>,
    ) -> Result<Instr<S>, E> {
        Ok(match self {
            Instr::Nop => Instr::Nop,
            Instr::Halt => Instr::Halt,
            Instr::Add { d, s, t } => Instr::Add { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Sub { d, s, t } => Instr::Sub { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::And { d, s, t } => Instr::And { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Or { d, s, t } => Instr::Or { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Xor { d, s, t } => Instr::Xor { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Sll { d, s, t } => Instr::Sll { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Srl { d, s, t } => Instr::Srl { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Sra { d, s, t } => Instr::Sra { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Slt { d, s, t } => Instr::Slt { d: f(d)?, s: f(s)?, t: f(t)? },
            Instr::Addi { d, s, imm } => Instr::Addi { d: f(d)?, s: f(s)?, imm },
            Instr::Andi { d, s, imm } => Instr::Andi { d: f(d)?, s: f(s)?, imm },
            Instr::Ori { d, s, imm } => Instr::Ori { d: f(d)?, s: f(s)?, imm },
            Instr::Xori { d, s, imm } => Instr::Xori { d: f(d)?, s: f(s)?, imm },
            Instr::Slti { d, s, imm } => Instr::Slti { d: f(d)?, s: f(s)?, imm },
            Instr::Slli { d, s, shamt } => Instr::Slli { d: f(d)?, s: f(s)?, shamt },
            Instr::Srli { d, s, shamt } => Instr::Srli { d: f(d)?, s: f(s)?, shamt },
            Instr::Srai { d, s, shamt } => Instr::Srai { d: f(d)?, s: f(s)?, shamt },
            Instr::Li { d, imm } => Instr::Li { d: f(d)?, imm },
            Instr::Lw { d, base, off } => Instr::Lw { d: f(d)?, base: f(base)?, off },
            Instr::Sw { s, base, off } => Instr::Sw { s: f(s)?, base: f(base)?, off },
            Instr::Mov { d, s } => Instr::Mov { d: f(d)?, s: f(s)? },
            Instr::Beq { s, t, off } => Instr::Beq { s: f(s)?, t: f(t)?, off },
            Instr::Bne { s, t, off } => Instr::Bne { s: f(s)?, t: f(t)?, off },
            Instr::Jmp { target } => Instr::Jmp { target },
            Instr::Jal { d, target } => Instr::Jal { d: f(d)?, target },
            Instr::Jr { s } => Instr::Jr { s: f(s)? },
            Instr::Jalr { d, s } => Instr::Jalr { d: f(d)?, s: f(s)? },
            Instr::Ldrrm { s } => Instr::Ldrrm { s: f(s)? },
            Instr::Mfpsw { d } => Instr::Mfpsw { d: f(d)? },
            Instr::Mtpsw { s } => Instr::Mtpsw { s: f(s)? },
        })
    }

    /// Collects every register operand, in field order.
    pub fn registers(&self) -> Vec<&R> {
        let mut out = Vec::with_capacity(3);
        match self {
            Instr::Nop | Instr::Halt | Instr::Jmp { .. } => {}
            Instr::Add { d, s, t }
            | Instr::Sub { d, s, t }
            | Instr::And { d, s, t }
            | Instr::Or { d, s, t }
            | Instr::Xor { d, s, t }
            | Instr::Sll { d, s, t }
            | Instr::Srl { d, s, t }
            | Instr::Sra { d, s, t }
            | Instr::Slt { d, s, t } => {
                out.push(d);
                out.push(s);
                out.push(t);
            }
            Instr::Addi { d, s, .. }
            | Instr::Andi { d, s, .. }
            | Instr::Ori { d, s, .. }
            | Instr::Xori { d, s, .. }
            | Instr::Slti { d, s, .. }
            | Instr::Slli { d, s, .. }
            | Instr::Srli { d, s, .. }
            | Instr::Srai { d, s, .. }
            | Instr::Mov { d, s }
            | Instr::Jalr { d, s } => {
                out.push(d);
                out.push(s);
            }
            Instr::Lw { d, base, .. } => {
                out.push(d);
                out.push(base);
            }
            Instr::Sw { s, base, .. } => {
                out.push(s);
                out.push(base);
            }
            Instr::Beq { s, t, .. } | Instr::Bne { s, t, .. } => {
                out.push(s);
                out.push(t);
            }
            Instr::Li { d, .. } | Instr::Jal { d, .. } | Instr::Mfpsw { d } => out.push(d),
            Instr::Jr { s } | Instr::Ldrrm { s } | Instr::Mtpsw { s } => out.push(s),
        }
        out
    }
}

impl<R: fmt::Display> fmt::Display for Instr<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Add { d, s, t } => write!(f, "add {d}, {s}, {t}"),
            Instr::Sub { d, s, t } => write!(f, "sub {d}, {s}, {t}"),
            Instr::And { d, s, t } => write!(f, "and {d}, {s}, {t}"),
            Instr::Or { d, s, t } => write!(f, "or {d}, {s}, {t}"),
            Instr::Xor { d, s, t } => write!(f, "xor {d}, {s}, {t}"),
            Instr::Sll { d, s, t } => write!(f, "sll {d}, {s}, {t}"),
            Instr::Srl { d, s, t } => write!(f, "srl {d}, {s}, {t}"),
            Instr::Sra { d, s, t } => write!(f, "sra {d}, {s}, {t}"),
            Instr::Slt { d, s, t } => write!(f, "slt {d}, {s}, {t}"),
            Instr::Addi { d, s, imm } => write!(f, "addi {d}, {s}, {imm}"),
            Instr::Andi { d, s, imm } => write!(f, "andi {d}, {s}, {imm}"),
            Instr::Ori { d, s, imm } => write!(f, "ori {d}, {s}, {imm}"),
            Instr::Xori { d, s, imm } => write!(f, "xori {d}, {s}, {imm}"),
            Instr::Slti { d, s, imm } => write!(f, "slti {d}, {s}, {imm}"),
            Instr::Slli { d, s, shamt } => write!(f, "slli {d}, {s}, {shamt}"),
            Instr::Srli { d, s, shamt } => write!(f, "srli {d}, {s}, {shamt}"),
            Instr::Srai { d, s, shamt } => write!(f, "srai {d}, {s}, {shamt}"),
            Instr::Li { d, imm } => write!(f, "li {d}, {imm}"),
            Instr::Lw { d, base, off } => write!(f, "lw {d}, {off}({base})"),
            Instr::Sw { s, base, off } => write!(f, "sw {s}, {off}({base})"),
            Instr::Mov { d, s } => write!(f, "mov {d}, {s}"),
            Instr::Beq { s, t, off } => write!(f, "beq {s}, {t}, {off}"),
            Instr::Bne { s, t, off } => write!(f, "bne {s}, {t}, {off}"),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Jal { d, target } => write!(f, "jal {d}, {target}"),
            Instr::Jr { s } => write!(f, "jr {s}"),
            Instr::Jalr { d, s } => write!(f, "jalr {d}, {s}"),
            Instr::Ldrrm { s } => write!(f, "ldrrm {s}"),
            Instr::Mfpsw { d } => write!(f, "mfpsw {d}"),
            Instr::Mtpsw { s } => write!(f, "mtpsw {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{AbsReg, ContextReg, Rrm};

    fn r(n: u8) -> ContextReg {
        ContextReg::new(n).unwrap()
    }

    #[test]
    fn opcode_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(32), None);
        assert_eq!(Opcode::from_u8(255), None);
    }

    #[test]
    fn map_registers_relocates_every_operand() {
        let rrm = Rrm::for_context(40, 8).unwrap();
        let i = Instr::Add { d: r(1), s: r(2), t: r(3) };
        let relocated: Instr<AbsReg> = i.map_registers(|x| rrm.relocate(x));
        assert_eq!(
            relocated,
            Instr::Add { d: AbsReg(41), s: AbsReg(42), t: AbsReg(43) }
        );
    }

    #[test]
    fn registers_matches_register_fields_arity() {
        let samples: Vec<Instr<ContextReg>> = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Add { d: r(0), s: r(1), t: r(2) },
            Instr::Addi { d: r(0), s: r(1), imm: 5 },
            Instr::Li { d: r(0), imm: 5 },
            Instr::Lw { d: r(0), base: r(1), off: 4 },
            Instr::Sw { s: r(0), base: r(1), off: 4 },
            Instr::Mov { d: r(0), s: r(1) },
            Instr::Beq { s: r(0), t: r(1), off: -2 },
            Instr::Jmp { target: 12 },
            Instr::Jal { d: r(0), target: 12 },
            Instr::Jr { s: r(0) },
            Instr::Jalr { d: r(0), s: r(1) },
            Instr::Ldrrm { s: r(2) },
            Instr::Mfpsw { d: r(1) },
            Instr::Mtpsw { s: r(1) },
        ];
        for i in samples {
            assert_eq!(
                i.registers().len(),
                i.opcode().register_fields().len(),
                "arity mismatch for {i}"
            );
        }
    }

    #[test]
    fn try_map_registers_propagates_errors() {
        let i = Instr::Add { d: r(1), s: r(2), t: r(3) };
        let res: Result<Instr<AbsReg>, &str> = i.try_map_registers(|x| {
            if x.number() == 2 {
                Err("bad")
            } else {
                Ok(AbsReg(u16::from(x.number())))
            }
        });
        assert_eq!(res, Err("bad"));
    }

    #[test]
    fn display_round_trips_through_mnemonics() {
        let i: Instr<ContextReg> = Instr::Lw { d: r(1), base: r(2), off: 4 };
        assert_eq!(i.to_string(), "lw r1, 4(r2)");
        let i: Instr<ContextReg> = Instr::Ldrrm { s: r(2) };
        assert_eq!(i.to_string(), "ldrrm r2");
    }
}
