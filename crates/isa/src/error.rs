//! Error types for register construction, instruction decoding and assembly.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Errors constructing typed register operands or relocation masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterError {
    /// A context-relative operand does not fit in the operand field.
    OperandOutOfRange {
        /// The offending operand value.
        operand: u8,
        /// The largest representable operand.
        max: u8,
    },
    /// A multi-RRM selector other than 0 or 1.
    BadSelector {
        /// The offending selector value.
        selector: u8,
    },
    /// A context size that is not a power of two within the architectural
    /// limit.
    BadContextSize {
        /// The offending size.
        size: u32,
    },
    /// A context base register not aligned to the context size.
    MisalignedBase {
        /// The offending base register number.
        base: u16,
        /// The context size the base must be aligned to.
        size: u32,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegisterError::OperandOutOfRange { operand, max } => {
                write!(f, "register operand r{operand} exceeds maximum r{max}")
            }
            RegisterError::BadSelector { selector } => {
                write!(f, "relocation mask selector {selector} is not 0 or 1")
            }
            RegisterError::BadContextSize { size } => {
                write!(f, "context size {size} is not a power of two within the operand range")
            }
            RegisterError::MisalignedBase { base, size } => {
                write!(f, "context base {base} is not aligned to context size {size}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Errors decoding a 32-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    UnknownOpcode {
        /// The raw opcode field value.
        opcode: u8,
        /// The word it was decoded from.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::UnknownOpcode { opcode, word } => {
                write!(f, "unknown opcode {opcode:#04x} in instruction word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors encoding an instruction into a 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodeError {
    /// An immediate outside the signed 14-bit field.
    ImmediateOutOfRange {
        /// The offending immediate.
        imm: i32,
    },
    /// A shift amount of 32 or more.
    ShamtOutOfRange {
        /// The offending shift amount.
        shamt: u8,
    },
    /// A jump target outside the 20-bit absolute address field.
    TargetOutOfRange {
        /// The offending target word address.
        target: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::ImmediateOutOfRange { imm } => {
                write!(f, "immediate {imm} does not fit in a signed 14-bit field")
            }
            EncodeError::ShamtOutOfRange { shamt } => {
                write!(f, "shift amount {shamt} is not below 32")
            }
            EncodeError::TargetOutOfRange { target } => {
                write!(f, "jump target {target} does not fit in a 20-bit field")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors produced by the two-pass assembler, with source line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the error.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The specific assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// An unknown mnemonic.
    UnknownMnemonic(String),
    /// Wrong operand count or shape for the mnemonic.
    BadOperands {
        /// The mnemonic being assembled.
        mnemonic: String,
        /// Expected operand syntax, e.g. `"rd, rs, rt"`.
        expected: &'static str,
    },
    /// A register operand that failed to parse or validate.
    BadRegister(String),
    /// An immediate that failed to parse or does not fit its field.
    BadImmediate(String),
    /// A label used but never defined.
    UndefinedLabel(String),
    /// A label defined more than once.
    DuplicateLabel(String),
    /// A branch target out of the representable PC-relative range.
    BranchOutOfRange {
        /// Branch source address (word index).
        from: u32,
        /// Branch target address (word index).
        to: u32,
    },
    /// A jump target out of the representable absolute range.
    JumpOutOfRange {
        /// Jump target address (word index).
        to: u32,
    },
    /// A malformed directive such as `.word`.
    BadDirective(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperands { mnemonic, expected } => {
                write!(f, "`{mnemonic}` expects operands `{expected}`")
            }
            AsmErrorKind::BadRegister(r) => write!(f, "bad register operand `{r}`"),
            AsmErrorKind::BadImmediate(i) => write!(f, "bad immediate `{i}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::BranchOutOfRange { from, to } => {
                write!(f, "branch from {from} to {to} exceeds the pc-relative range")
            }
            AsmErrorKind::JumpOutOfRange { to } => {
                write!(f, "jump target {to} exceeds the absolute address range")
            }
            AsmErrorKind::BadDirective(d) => write!(f, "bad directive `{d}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = RegisterError::OperandOutOfRange { operand: 70, max: 63 };
        assert_eq!(e.to_string(), "register operand r70 exceeds maximum r63");
        let e = DecodeError::UnknownOpcode { opcode: 0x3f, word: 0xffff_ffff };
        assert!(e.to_string().starts_with("unknown opcode"));
        let e = AsmError {
            line: 3,
            kind: AsmErrorKind::UnknownMnemonic("frob".into()),
        };
        assert_eq!(e.to_string(), "line 3: unknown mnemonic `frob`");
    }
}
