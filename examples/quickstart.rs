//! Quickstart: the register relocation mechanism in five minutes.
//!
//! 1. Reproduce Figure 1's relocation arithmetic.
//! 2. Run relocated code on the cycle-level machine.
//! 3. Compare fixed hardware contexts against register relocation on one
//!    multithreaded workload.
//!
//! Run with: `cargo run --example quickstart`

use register_relocation::alloc::{BitmapAllocator, ContextAllocator};
use register_relocation::experiments::{compare, ExperimentSpec, FaultKind};
use register_relocation::isa::{assemble, ContextReg, Rrm};
use register_relocation::machine::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Figure 1: context-relative -> absolute register numbers. -----
    println!("Figure 1: relocation arithmetic");
    let a = Rrm::for_context(40, 8)?; // size-8 context at base 40
    let b = Rrm::for_context(32, 16)?; // size-16 context at base 32
    println!("  (a) RRM {:07b} | r5  -> {}", a.raw(), a.relocate(ContextReg::new(5)?));
    println!("  (b) RRM {:07b} | r14 -> {}", b.raw(), b.relocate(ContextReg::new(14)?));

    // --- 2. The same OR, performed by the decode hardware. ---------------
    println!("\nDecode-stage relocation on the machine:");
    let mut m = Machine::new(MachineConfig::default_128())?;
    let p = assemble(
        r#"
        li r0, 40       ; the relocation mask for context (a)
        ldrrm r0        ; install it (one delay slot)
        nop
        li r5, 1234     ; context-relative r5 ...
        halt
        "#,
    )?;
    m.load_program(&p)?;
    m.run_until_halt(100)?;
    println!("  wrote context-relative r5 = 1234; absolute R45 = {}", m.read_abs(45)?);

    // --- 3. Software context allocation over one register file. ----------
    println!("\nFlexible partitioning of a 128-register file:");
    let mut alloc = BitmapAllocator::new(128)?;
    for need in [6, 17, 12, 3, 24] {
        let ctx = alloc.alloc(need).expect("file has room");
        println!(
            "  thread needing {need:>2} registers -> {ctx} (size {:>2}, mask {:07b})",
            ctx.size(),
            ctx.rrm().raw()
        );
    }
    println!("  free registers remaining: {}", alloc.free_registers());

    // --- 4. The headline experiment: fixed vs flexible. -------------------
    println!("\nFixed 32-register windows vs register relocation");
    println!("(cache faults, F = 128, R = 16, L = 400, C ~ U(6,24)):");
    let spec = ExperimentSpec {
        file_size: 128,
        run_length: 16.0,
        fault: FaultKind::Cache { latency: 400 },
        ..ExperimentSpec::default()
    };
    let point = compare(&spec)?;
    println!(
        "  fixed    : efficiency {:.3} with {:.1} resident contexts",
        point.fixed_efficiency, point.fixed_avg_resident
    );
    println!(
        "  flexible : efficiency {:.3} with {:.1} resident contexts",
        point.flexible_efficiency, point.flexible_avg_resident
    );
    println!("  speedup  : {:.2}x", point.speedup());
    Ok(())
}
