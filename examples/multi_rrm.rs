//! Multiple active contexts (paper section 5.3): two RRMs selected by the
//! high operand bit, enabling inter-context instructions like
//! `add c0.r3, c0.r4, c1.r6` — and even register-window emulation.
//!
//! Run with: `cargo run --example multi_rrm`

use register_relocation::isa::assemble;
use register_relocation::machine::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = MachineConfig::default_128();
    cfg.multi_rrm = true;
    cfg.ldrrm_delay_slots = 0;

    // --- Inter-context arithmetic. ----------------------------------------
    println!("Inter-context ADD (the paper's example):");
    let mut m = Machine::new(cfg.clone())?;
    let p = assemble(
        r#"
        li r0, 96           ; RRM1 = 96, RRM0 = 32, loaded together:
        slli r0, r0, 7
        ori r0, r0, 32
        ldrrm r0
        add c0.r3, c0.r4, c1.r6
        halt
        "#,
    )?;
    m.load_program(&p)?;
    m.write_abs(32 + 4, 40)?; // producer context C0: r4
    m.write_abs(96 + 6, 2)?; // consumer context C1: r6
    m.run_until_halt(100)?;
    println!("  C0 at base 32, C1 at base 96");
    println!("  add c0.r3, c0.r4, c1.r6  ->  C0.r3 = {}", m.read_abs(32 + 3)?);

    // --- Shared activation frames (the TAM-style use case). ---------------
    println!("\nTwo threads sharing an activation frame through RRM1:");
    let mut m = Machine::new(cfg.clone())?;
    // Frame at base 64; thread contexts at 0 and 16. Each thread
    // accumulates into the shared frame's r1 without context switching.
    let thread_code = assemble(
        r#"
        li r0, 64           ; RRM1 = frame, RRM0 = 0 (thread A)
        slli r0, r0, 7
        ldrrm r0
        li r5, 7
        add c1.r1, c1.r1, r5    ; frame.r1 += thread-local r5
        li r0, 64           ; switch RRM0 to thread B at base 16
        slli r0, r0, 7
        ori r0, r0, 16
        ldrrm r0
        li r5, 35
        add c1.r1, c1.r1, r5
        halt
        "#,
    )?;
    m.load_program(&thread_code)?;
    m.run_until_halt(100)?;
    println!("  thread A (base 0) added 7, thread B (base 16) added 35");
    println!("  shared frame r1 (absolute R65) = {}", m.read_abs(65)?);

    // --- Register-window emulation. ---------------------------------------
    println!("\nEmulating overlapping register windows:");
    let mut m = Machine::new(cfg)?;
    let p = assemble(
        r#"
        li r0, 0x400        ; window A: RRM0 = 0; next window B: RRM1 = 8
        ldrrm r0
        li r5, 123          ; caller-local value
        mov c1.r2, r5       ; write the outgoing argument into window B
        li r0, 8            ; "call": rotate so RRM0 = window B
        ldrrm r0
        mov r3, r2          ; callee reads the argument as its own r2
        halt
        "#,
    )?;
    m.load_program(&p)?;
    m.run_until_halt(100)?;
    println!("  caller passed 123 via c1.r2; callee computed r3 = {}", m.read_abs(8 + 3)?);
    println!("\nA single LDRRM loads every mask; only MUXes were added to decode.");
    Ok(())
}
