//! Cache interference and adaptive context limiting (paper section 5.2).
//!
//! More resident contexts hide more latency — but threads sharing a cache
//! interfere, shortening run lengths. This example sweeps the resident-
//! context cap under a destructive-interference model and lets the
//! hill-climbing limiter find the sweet spot.
//!
//! Run with: `cargo run --example adaptive_contexts`

use register_relocation::alloc::BitmapAllocator;
use register_relocation::runtime::{SchedCosts, UnloadPolicyKind};
use register_relocation::sim::adaptive::{hill_climb, sweep_limits};
use register_relocation::sim::{InterferenceModel, SimOptions};
use register_relocation::workload::{ContextSizeDist, Dist, WorkloadBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadBuilder::new()
        .threads(48)
        .run_length(Dist::Geometric { mean: 64.0 })
        .latency(Dist::Constant(100))
        .context_size(ContextSizeDist::Fixed(8))
        .work_per_thread(25_000)
        .seed(2026)
        .build()?;

    let opts = SimOptions {
        interference: Some(InterferenceModel::new(0.6)?),
        ..SimOptions::cache_experiments()
    };
    let make_alloc =
        || BitmapAllocator::new(128).unwrap().into();

    println!("Interference model: R_eff(n) = R / (1 + 0.6 (n-1)), R = 64, L = 100\n");
    println!("  limit    efficiency    avg resident");
    let limits = [Some(1), Some(2), Some(4), Some(6), Some(8), Some(12), None];
    let (best, samples) = sweep_limits(
        make_alloc,
        SchedCosts::cache_experiments(),
        UnloadPolicyKind::Never,
        &workload,
        &opts,
        &limits,
    )?;
    for s in &samples {
        let label = s.limit.map_or("none".to_string(), |l| l.to_string());
        let marker = if s.limit == best.limit { "  <- best" } else { "" };
        println!("  {label:>5}    {:>10.3}    {:>12.2}{marker}", s.efficiency, s.avg_resident);
    }

    println!("\nHill-climbing from a limit of 16:");
    let (found, history) = hill_climb(
        make_alloc,
        SchedCosts::cache_experiments(),
        UnloadPolicyKind::Never,
        &workload,
        &opts,
        16,
    )?;
    for s in &history {
        println!("  tried limit {:>3?}: efficiency {:.3}", s.limit.unwrap(), s.efficiency);
    }
    println!(
        "\nConverged on a limit of {:?} with efficiency {:.3} — \
         \"limiting the number of contexts to improve cache performance\".",
        found.limit.unwrap(),
        found.efficiency
    );
    Ok(())
}
