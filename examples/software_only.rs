//! The software-only approach (paper section 5.1): multiple code versions
//! over disjoint register subsets — register relocation at compile time,
//! needing *no* hardware support at all.
//!
//! Run with: `cargo run --example software_only`

use register_relocation::isa::{assemble, decode};
use register_relocation::machine::{Machine, MachineConfig};
use register_relocation::software_only::{compile_versions, SoftwareOnlyError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A thread body written for registers 0..16.
    let body = assemble(
        r#"
        addi r5, r5, 1
        addi r6, r6, 2
        add r7, r5, r6
        "#,
    )?;
    println!("Original thread body (compiled for a 16-register context):");
    for w in body.words() {
        println!("    {}", decode(*w)?);
    }

    // "The compiler" emits one version per context, registers rewritten.
    let versions = compile_versions(&body, 4, 16, 0)?;
    println!("\nFour compile-time-relocated versions:");
    for v in &versions {
        let first = decode(v.words[0])?;
        println!("  registers {:>2}..{:<2}  first instr: {first}", v.base, {
            v.base + v.size as u16 - 1
        });
    }

    // Chain the versions with jumps and run them on a 64-register machine
    // whose RRM stays zero the whole time.
    let mut cfg = MachineConfig::default_128();
    cfg.num_registers = 64;
    cfg.operand_width = 6;
    let mut m = Machine::new(cfg)?;
    let mut image = Vec::new();
    for (i, v) in versions.iter().enumerate() {
        image.extend(&v.words);
        if i + 1 == versions.len() {
            image.push(assemble("halt")?.words()[0]);
        } else {
            let next = (i + 1) * 4;
            image.extend(assemble(&format!("jmp {next}"))?.words());
        }
    }
    m.memory_mut().load_image(0, &image)?;
    m.set_pc(0);
    m.run_until_halt(1_000)?;

    println!("\nAfter running all versions (hardware RRM = {:#x} throughout):", m.rrm(0).raw());
    for v in &versions {
        println!(
            "  context at {:>2}: r5 = {}, r6 = {}, r7 = {}",
            v.base,
            m.read_abs(v.base + 5)?,
            m.read_abs(v.base + 6)?,
            m.read_abs(v.base + 7)?
        );
    }
    println!(
        "\nCode expansion: {} versions x {} words = {} words (the scheme's cost).",
        versions.len(),
        body.len(),
        versions.len() * body.len()
    );

    // And the limitation the paper hit on the 32-register MIPS: the operand
    // field bounds the total register space.
    match compile_versions(&body, 5, 16, 0) {
        Err(SoftwareOnlyError::ExceedsOperandField { base, size }) => println!(
            "A fifth context at base {base} (+{size}) exceeds the operand field — \
             exactly the MIPS limitation the paper reports."
        ),
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
