//! The complete software stack in one session: an executive that spawns,
//! schedules, and retires threads on the cycle-level machine, with every
//! context operation performed by the runtime's own assembly (Appendix A
//! allocation, section 2.5 loading, Figure 3 switching).
//!
//! Run with: `cargo run --example executive`

use register_relocation::runtime::{ExecError, Executive};

fn main() -> Result<(), ExecError> {
    let mut exec = Executive::boot()?;
    println!(
        "Booted: OS reserved registers 0..32, {} cycles of boot-time assembly.",
        exec.os_cycles()
    );

    let body = Executive::standard_body(3)?;
    exec.install_body(&body)?;
    let entry = body.label("entry").unwrap();

    println!("\nSpawning a mixed workload (each spawn runs the Appendix A allocator):");
    let mut tids = Vec::new();
    for regs in [8u32, 12, 24, 8, 16] {
        match exec.spawn(entry, regs) {
            Ok(tid) => {
                let tcb = *exec.threads().iter().find(|t| t.tid == tid).unwrap();
                println!(
                    "  thread {tid}: {regs:>2} registers -> {:>2}-register context at base {:>3}",
                    tcb.size, tcb.base
                );
                tids.push(tid);
            }
            Err(e) => println!("  spawn({regs} regs) failed: {e}"),
        }
    }

    let consumed = exec.run(2_000)?;
    println!("\nRan {consumed} cycles of multithreaded execution:");
    for &tid in &tids {
        println!("  thread {tid}: {} work units", exec.read_thread_reg(tid, 5)?);
    }

    // Retire a thread that is not holding the processor; its context is
    // unloaded to memory and its registers recycled.
    let victim = tids
        .iter()
        .copied()
        .find(|&t| {
            let tcb = exec.threads().iter().find(|x| x.tid == t).unwrap();
            exec.machine().rrm(0).raw() != tcb.base
        })
        .expect("some thread is not running");
    let tcb = exec.retire(victim)?;
    println!(
        "\nRetired thread {victim}; final r5 = {} persisted at save area {}.",
        exec.machine().memory().load(i64::from(tcb.save_area + 5)).unwrap(),
        tcb.save_area
    );
    let fresh = exec.spawn(entry, 10)?;
    println!("Spawned thread {fresh} into the recycled registers at base {}.", {
        exec.threads().iter().find(|t| t.tid == fresh).unwrap().base
    });

    exec.run(1_000)?;
    println!("\nAfter another 1000 cycles:");
    for t in exec.threads() {
        println!(
            "  thread {} (base {:>3}): {} work units",
            t.tid,
            t.base,
            exec.read_thread_reg(t.tid, 5)?
        );
    }
    println!(
        "\nTotals: {} machine cycles, of which {} were OS assembly (spawn/retire).",
        exec.cycles(),
        exec.os_cycles()
    );
    Ok(())
}
