//! The paper's Figure 3 in action: software context switching through a
//! circular list of relocation masks, on the cycle-level machine.
//!
//! Sixteen threads share a 128-register file in size-8 contexts — four times
//! what fixed 32-register hardware windows would allow — all running the
//! *same* code, each seeing its own registers through the RRM.
//!
//! Run with: `cargo run --example context_switch_demo`

use register_relocation::alloc::{BitmapAllocator, ContextAllocator, ContextHandle};
use register_relocation::machine::{Machine, MachineConfig};
use register_relocation::runtime::switch_code::{
    install_ring, round_robin_program, round_robin_source, SWITCH_CYCLES,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 16;
    const CTX_SIZE: u32 = 8;
    const WORK_UNITS: u32 = 3;

    println!("The Figure 3 context switch ({} cycles measured):\n", SWITCH_CYCLES);
    for line in round_robin_source(1).lines().take(6) {
        println!("    {line}");
    }

    let mut machine = Machine::new(MachineConfig::default_128())?;
    let (program, entry) = round_robin_program(WORK_UNITS)?;
    machine.load_program(&program)?;

    let mut alloc = BitmapAllocator::new(128)?;
    let contexts: Vec<ContextHandle> = (0..THREADS)
        .map(|_| alloc.alloc(CTX_SIZE).expect("16 x 8 = 128 registers"))
        .collect();
    install_ring(&mut machine, &contexts, entry)?;

    println!("\nInstalled {THREADS} contexts of {CTX_SIZE} registers:");
    println!(
        "  ring of NextRRM masks: {}",
        contexts
            .iter()
            .map(|c| format!("{:#04x}", c.rrm().raw()))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    let budget = 5_000u64;
    machine.run(budget)?;

    println!("\nAfter {budget} cycles ({} instructions):", machine.instret());
    let mut total_work = 0u64;
    for (i, c) in contexts.iter().enumerate() {
        let units = machine.read_abs(c.base() + 5)?;
        total_work += u64::from(units);
        println!("  thread {i:>2} (regs {:>3}..{:>3}): {units} work units", c.base(), {
            c.base() + CTX_SIZE as u16 - 1
        });
    }
    let visits = total_work as f64 / f64::from(WORK_UNITS);
    let overhead = (machine.cycles() as f64 - total_work as f64) / visits;
    println!("\n  work cycles          : {total_work}");
    println!("  switch overhead/visit: {overhead:.2} cycles (S = 6 in the paper)");
    println!(
        "  processor efficiency : {:.3}",
        total_work as f64 / machine.cycles() as f64
    );
    Ok(())
}
